//! `pg-hive serve` — a long-running multi-tenant schema service.
//!
//! Everything the engine can do in one-shot CLI invocations (streaming
//! discovery, canonical [`SchemaState`](crate::state::SchemaState) folding,
//! durable snapshots, drift diffs, the signature cache) is served here over
//! a minimal in-tree HTTP/1.1 server built directly on
//! [`std::net::TcpListener`] — no crates.io dependency, the same playbook
//! as the vendored JSON parser in `pg_hive_graph`.
//!
//! ## Correctness model
//!
//! The server interleaves many clients' ingests into shared per-tenant
//! state. This is safe to do — and black-box testable — because each
//! request body contributes a **fixed observation** and the canonical
//! [`SchemaState`](crate::state::SchemaState) fold over observations is
//! **associative and commutative** with a deterministic `finalize()`: any
//! interleaving of ingest requests finalizes byte-identically to a serial
//! replay of the same batches in any order. `tests/serve_concurrent.rs`
//! enforces exactly that property over raw `TcpStream`s.
//!
//! "Fixed observation" is load-bearing and mirrors the offline sharded
//! path's per-file rule (see `docs/ARCHITECTURE.md`): every request body
//! is chunked by a **fresh reader with a fresh registry**, so its
//! contribution — label sets, property types, and the per-chunk distinct
//! endpoint counts that bound cardinality — depends only on the body and
//! the chunk size, never on arrival order. Cross-request edges (endpoint
//! declared by some *other* request) always travel the carried-pending
//! path: the batch registry is merged into the tenant registry after
//! absorb, and [`Discoverer::resolve_pending`] materializes each resolved
//! edge as its own stub mini-graph — a per-edge observation identical no
//! matter *when* the endpoint finally shows up. Request bodies are the
//! unit of observation exactly as shard files are offline, so the shard
//! equivalence proof carries over verbatim.
//!
//! Each ingest request is **atomic**: the body is parsed into chunks in
//! full *before* any tenant state is touched, so a malformed body returns
//! `400 bad-body` and leaves the tenant exactly as it was.
//!
//! ## Lock ordering
//!
//! Two lock levels exist and must only ever be taken top-down:
//!
//! 1. the **tenant map** (`RwLock` over name → `Arc<Mutex<TenantState>>`),
//!    held only long enough to look up or insert the `Arc` — never while a
//!    tenant mutex is held;
//! 2. a **tenant mutex**, guarding that tenant's entire mutable state
//!    (schema state, registry, pending edges, pass counter, history).
//!
//! Handlers clone the `Arc` out of the map, drop the map guard, and only
//! then lock the tenant. The [`SignatureCache`]'s internal mutex is a leaf
//! lock taken by the absorb pipeline below both levels. Following this
//! order makes deadlock impossible; the two-thread interleaving exerciser
//! in this module's tests drives map-inserts against hot-tenant ingests to
//! demonstrate it.
//!
//! ## Durability
//!
//! `POST /v1/{tenant}/checkpoint` writes a standard versioned, checksummed
//! snapshot (`<state-dir>/<tenant>.snapshot`, atomic temp-file + rename)
//! carrying the schema state, registry, pending edges, signature cache and
//! a watch section whose `pass` field lets a restarted server continue the
//! pass numbering without spurious drift. On startup the server scans
//! `--state-dir` and warm-resumes every tenant it finds.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io::{self, BufRead, BufReader, Cursor, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pg_hive_graph::stream::{csv::CsvSource, jsonl::JsonlSource, pgt::PgtSource};
use pg_hive_graph::{
    ChunkedTextReader, LabelSetRegistry, PropertyGraph, RawGraphSource, Record, StreamWarnings,
};

use crate::diff::{diff_schemas, SchemaDiff};
use crate::pipeline::Discoverer;
use crate::schema::SchemaGraph;
use crate::serialize::pg_schema_strict;
use crate::sigcache::{SignatureCache, DEFAULT_CACHE_CAP};
use crate::snapshot::{
    context_snapshot_cached, sigcache_from_snapshot, ResumeContext, Snapshot, SnapshotConfig,
    WatchCheckpoint,
};

/// Default number of worker threads handling connections.
pub const DEFAULT_WORKERS: usize = 4;
/// Default per-connection read timeout.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Default maximum request body size (64 MiB).
pub const DEFAULT_MAX_BODY: usize = 64 << 20;
/// Default number of `(pass, schema)` entries kept per tenant for
/// `GET /v1/{tenant}/diff?since=N`.
pub const DEFAULT_HISTORY: usize = 64;
/// Default streaming chunk size for ingest bodies (elements per chunk).
pub const DEFAULT_CHUNK_SIZE: usize = 100_000;

const MAX_REQUEST_LINE: usize = 8 << 10;
const MAX_HEADER_LINE: usize = 8 << 10;
const MAX_HEADERS: usize = 64;
const MAX_HEADER_BYTES: usize = 32 << 10;

/// Server tuning knobs. All fields have working defaults.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads in the connection pool.
    pub workers: usize,
    /// Elements per streaming chunk when absorbing ingest bodies.
    pub chunk_size: usize,
    /// Directory for per-tenant snapshots; `None` disables checkpointing
    /// and warm restarts.
    pub state_dir: Option<PathBuf>,
    /// Keep a rotation chain of this many previous snapshots per tenant
    /// (`<tenant>.snapshot.1..K`). `None` keeps only the current one.
    pub keep: Option<usize>,
    /// Socket read timeout: bounds how long a slow or stalled client can
    /// hold a worker.
    pub read_timeout: Duration,
    /// Maximum accepted request body size in bytes.
    pub max_body: usize,
    /// `(pass, schema)` history entries retained per tenant for `diff`.
    pub history: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: DEFAULT_WORKERS,
            chunk_size: DEFAULT_CHUNK_SIZE,
            state_dir: None,
            keep: None,
            read_timeout: DEFAULT_READ_TIMEOUT,
            max_body: DEFAULT_MAX_BODY,
            history: DEFAULT_HISTORY,
        }
    }
}

/// A drift notification produced when an ingest pass changed a tenant's
/// finalized schema. Fired *after* the tenant lock is released, so sinks
/// can be arbitrarily slow without stalling other requests for the
/// tenant's lock holder.
#[derive(Debug, Clone)]
pub struct DriftNotice {
    /// The tenant whose schema drifted.
    pub tenant: String,
    /// The pass number that produced the drift.
    pub pass: u64,
    /// Elements absorbed by that pass (including resolved pending edges).
    pub elements_added: u64,
    /// The schema delta.
    pub diff: SchemaDiff,
}

/// Callback invoked for every drift notice. The CLI wires the
/// `--on-drift exec:/jsonl:` sink codec through this.
pub type DriftHook = Box<dyn Fn(&DriftNotice) + Send + Sync>;

/// Everything mutable about one tenant, guarded by one mutex (level 2 of
/// the lock order documented at module level).
struct TenantState {
    state: crate::state::SchemaState,
    registry: LabelSetRegistry,
    pending: Vec<Record>,
    cache: SignatureCache,
    pass: u64,
    elements: u64,
    warnings: StreamWarnings,
    history: VecDeque<(u64, SchemaGraph)>,
    last_schema: SchemaGraph,
}

impl TenantState {
    fn fresh(discoverer: &Discoverer) -> Self {
        TenantState {
            state: discoverer.new_state(),
            registry: LabelSetRegistry::default(),
            pending: Vec::new(),
            cache: SignatureCache::default(),
            pass: 0,
            elements: 0,
            warnings: StreamWarnings::default(),
            history: VecDeque::from([(0, SchemaGraph::default())]),
            last_schema: SchemaGraph::default(),
        }
    }

    fn push_history(&mut self, pass: u64, schema: SchemaGraph, cap: usize) {
        self.history.push_back((pass, schema));
        while self.history.len() > cap.max(1) {
            self.history.pop_front();
        }
    }
}

type TenantMap = RwLock<BTreeMap<String, Arc<Mutex<TenantState>>>>;

/// The transport-independent server core: tenant states, routing and all
/// endpoint handlers. [`bind`] wraps it in the TCP accept loop; tests can
/// drive [`ServeCore::dispatch`] directly without sockets.
pub struct ServeCore {
    discoverer: Discoverer,
    opts: ServeOptions,
    snapshot_config: SnapshotConfig,
    tenants: TenantMap,
    drift_hook: Option<DriftHook>,
    started: Instant,
}

/// Ingest body wire formats accepted by `POST /v1/{tenant}/ingest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyFormat {
    Pgt,
    Jsonl,
    CsvNodes,
    CsvEdges,
}

impl BodyFormat {
    fn parse(s: &str) -> Option<BodyFormat> {
        match s {
            "pgt" => Some(BodyFormat::Pgt),
            "jsonl" => Some(BodyFormat::Jsonl),
            "csv" => Some(BodyFormat::CsvNodes),
            "csv-edges" => Some(BodyFormat::CsvEdges),
            _ => None,
        }
    }
}

/// A parsed HTTP request, ready for [`ServeCore::dispatch`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with the query string stripped.
    pub path: String,
    /// Decoded `key=value` query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// True when the client asked for `Connection: close` (or spoke
    /// HTTP/1.0 without `keep-alive`).
    pub close: bool,
}

impl Request {
    /// Build a request for direct [`ServeCore::dispatch`] testing.
    pub fn new(method: &str, target: &str, body: Vec<u8>) -> Request {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), parse_query(q)),
            None => (target.to_string(), Vec::new()),
        };
        Request {
            method: method.to_string(),
            path,
            query,
            body,
            close: false,
        }
    }

    fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response produced by [`ServeCore::dispatch`] or the protocol
/// layer.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// True when the connection must close after this response (the
    /// request broke framing, so the byte stream can't be trusted).
    pub close: bool,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
        }
    }

    fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A named error with a JSON body: `{"error":"<name>","detail":"..."}`.
    fn error(status: u16, name: &str, detail: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(name),
                json_escape(detail)
            ),
        )
    }

    fn closing(mut self) -> Response {
        self.close = true;
        self
    }
}

/// Escape a string for embedding in a JSON double-quoted literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// Tenant names become snapshot file stems, so they are restricted to a
/// filesystem- and URL-safe alphabet: ASCII alphanumerics, `-`, `_` and
/// non-leading `.`, at most 64 bytes.
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

fn diff_json(diff: &SchemaDiff) -> String {
    format!(
        "{{\"empty\":{},\"monotone\":{},\"added_node_types\":{},\"removed_node_types\":{},\
         \"changed_node_types\":{},\"added_edge_types\":{},\"removed_edge_types\":{},\
         \"changed_edge_types\":{},\"summary\":\"{}\"}}",
        diff.is_empty(),
        diff.is_monotone(),
        diff.added_node_types.len(),
        diff.removed_node_types.len(),
        diff.changed_node_types.len(),
        diff.added_edge_types.len(),
        diff.removed_edge_types.len(),
        diff.changed_edge_types.len(),
        json_escape(&diff.to_string())
    )
}

impl ServeCore {
    /// Build a server core. When `opts.state_dir` is set, every
    /// `<tenant>.snapshot` found there is warm-resumed (rotated
    /// `.snapshot.N` files are ignored); a snapshot that fails to load or
    /// was written under an incompatible configuration is a startup error
    /// — refusing loudly beats silently dropping a tenant's state.
    pub fn new(discoverer: Discoverer, opts: ServeOptions) -> Result<ServeCore, String> {
        let snapshot_config = SnapshotConfig::new(discoverer.config(), opts.chunk_size);
        let mut tenants = BTreeMap::new();
        if let Some(dir) = &opts.state_dir {
            for (name, tenant) in resume_tenants(dir, &snapshot_config)? {
                tenants.insert(name, Arc::new(Mutex::new(tenant)));
            }
        }
        Ok(ServeCore {
            discoverer,
            opts,
            snapshot_config,
            tenants: RwLock::new(tenants),
            drift_hook: None,
            started: Instant::now(),
        })
    }

    /// Install the drift callback. Must be called before the core is
    /// shared ([`bind`] takes an `Arc`).
    pub fn set_drift_hook(&mut self, hook: DriftHook) {
        self.drift_hook = Some(hook);
    }

    /// The options this core was built with.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Names of all currently resident tenants, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants
            .read()
            .expect("tenant map poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Look up a tenant. Lock order: take the map read guard, clone the
    /// `Arc`, drop the guard — the caller locks the tenant mutex only
    /// after this returns.
    fn tenant(&self, name: &str) -> Option<Arc<Mutex<TenantState>>> {
        self.tenants
            .read()
            .expect("tenant map poisoned")
            .get(name)
            .cloned()
    }

    /// Look up a tenant, creating it if absent. Same lock discipline as
    /// [`ServeCore::tenant`]: the map write guard is released before the
    /// returned tenant mutex is ever locked.
    fn tenant_or_create(&self, name: &str) -> Arc<Mutex<TenantState>> {
        if let Some(t) = self.tenant(name) {
            return t;
        }
        let mut map = self.tenants.write().expect("tenant map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(TenantState::fresh(&self.discoverer))))
            .clone()
    }

    /// Route one request. Returns the response plus an optional drift
    /// notice the transport layer fires **after** writing the response —
    /// and, crucially, after every tenant lock has been released.
    pub fn dispatch(&self, req: &Request) -> (Response, Option<DriftNotice>) {
        if req.path == "/healthz" {
            if req.method != "GET" {
                return (method_not_allowed("GET"), None);
            }
            return (self.healthz(), None);
        }
        let Some(rest) = req.path.strip_prefix("/v1/") else {
            return (
                Response::error(404, "unknown-route", &format!("no route for {}", req.path)),
                None,
            );
        };
        let Some((tenant, verb)) = rest.split_once('/') else {
            return (
                Response::error(404, "unknown-route", &format!("no route for {}", req.path)),
                None,
            );
        };
        if !valid_tenant(tenant) {
            return (
                Response::error(
                    400,
                    "invalid-tenant",
                    "tenant names are 1-64 ASCII alphanumerics, '-', '_' or non-leading '.'",
                ),
                None,
            );
        }
        match verb {
            "ingest" => {
                if req.method != "POST" {
                    return (method_not_allowed("POST"), None);
                }
                self.ingest(tenant, req)
            }
            "schema" => {
                if req.method != "GET" {
                    return (method_not_allowed("GET"), None);
                }
                (self.schema(tenant, req), None)
            }
            "stats" => {
                if req.method != "GET" {
                    return (method_not_allowed("GET"), None);
                }
                (self.stats(tenant), None)
            }
            "diff" => {
                if req.method != "GET" {
                    return (method_not_allowed("GET"), None);
                }
                (self.diff(tenant, req), None)
            }
            "checkpoint" => {
                if req.method != "POST" {
                    return (method_not_allowed("POST"), None);
                }
                (self.checkpoint(tenant), None)
            }
            other => (
                Response::error(
                    404,
                    "unknown-route",
                    &format!("unknown verb '{other}' (want ingest/schema/stats/diff/checkpoint)"),
                ),
                None,
            ),
        }
    }

    /// Fire the drift hook for a notice, if one is installed.
    pub fn fire_drift(&self, notice: &DriftNotice) {
        if let Some(hook) = &self.drift_hook {
            hook(notice);
        }
    }

    fn healthz(&self) -> Response {
        let names = self.tenant_names();
        let list = names
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(",");
        Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"tenants\":[{list}],\"uptime_ms\":{}}}",
                self.started.elapsed().as_millis()
            ),
        )
    }

    fn ingest(&self, tenant: &str, req: &Request) -> (Response, Option<DriftNotice>) {
        let format = match req.param("format") {
            None => BodyFormat::Pgt,
            Some(f) => match BodyFormat::parse(f) {
                Some(f) => f,
                None => {
                    return (
                        Response::error(
                            400,
                            "bad-query",
                            &format!("unknown format '{f}' (want pgt, jsonl, csv or csv-edges)"),
                        ),
                        None,
                    )
                }
            },
        };
        let handle = self.tenant_or_create(tenant);
        let mut guard = handle.lock().expect("tenant state poisoned");
        let t = &mut *guard;
        // Phase 1 — parse the whole body into chunks with a *fresh* reader
        // and registry, exactly like one shard file in the offline sharded
        // path: the batch's contribution (including its per-chunk
        // cardinality observations) depends only on the body and the chunk
        // size, never on what other clients ingested first. Any parse
        // error aborts here with the tenant untouched: ingest is
        // all-or-nothing.
        let source: Box<dyn RawGraphSource + Send> = match format {
            BodyFormat::Pgt => Box::new(PgtSource::new(Cursor::new(req.body.clone()))),
            BodyFormat::Jsonl => Box::new(JsonlSource::new(Cursor::new(req.body.clone()))),
            BodyFormat::CsvNodes => Box::new(CsvSource::new(
                Cursor::new(req.body.clone()),
                None::<Cursor<Vec<u8>>>,
            )),
            BodyFormat::CsvEdges => Box::new(CsvSource::new(
                Cursor::new(Vec::new()),
                Some(Cursor::new(req.body.clone())),
            )),
        };
        let mut reader = ChunkedTextReader::with_registry(
            source,
            self.opts.chunk_size,
            LabelSetRegistry::default(),
        );
        reader.set_carry_unresolved(true);
        let mut chunks: Vec<PropertyGraph> = Vec::new();
        loop {
            match reader.next_chunk() {
                Ok(Some(chunk)) => chunks.push(chunk),
                Ok(None) => break,
                Err(e) => {
                    return (
                        Response::error(400, "bad-body", &format!("parse error: {e}")),
                        None,
                    )
                }
            }
        }
        // Phase 2 — commit. Absorb runs inline (threads = 1): the tenant
        // mutex is the only coarse lock held and the signature cache's
        // internal mutex is a leaf below it.
        let report = self
            .discoverer
            .absorb_stream_cached(chunks, &mut t.state, 1, &t.cache);
        // Cross-batch edges (endpoint declared by some other request, past
        // or future) always travel the carried-pending path and resolve as
        // stub mini-graphs — a fixed per-edge observation, so resolution
        // *timing* can never change the schema bytes.
        t.pending.extend(reader.take_pending());
        t.warnings.absorb(&reader.warnings());
        t.warnings.duplicate_nodes += t.registry.merge(&reader.into_registry());
        let carried = std::mem::take(&mut t.pending);
        let (left, resolved) = self
            .discoverer
            .resolve_pending(&mut t.state, &t.registry, carried);
        t.pending = left;
        t.pass += 1;
        let absorbed = report.elements + resolved;
        t.elements += absorbed;
        let schema = t.state.finalize_cached();
        let diff = diff_schemas(&t.last_schema, &schema);
        let pass = t.pass;
        let body = format!(
            "{{\"tenant\":\"{}\",\"pass\":{pass},\"elements_absorbed\":{absorbed},\
             \"elements_resolved\":{resolved},\"elements_total\":{},\"pending_edges\":{},\
             \"node_types\":{},\"edge_types\":{},\"drift\":{},\"monotone\":{}}}",
            json_escape(tenant),
            t.elements,
            t.pending.len(),
            schema.node_types.len(),
            schema.edge_types.len(),
            !diff.is_empty(),
            diff.is_monotone()
        );
        let notice = if diff.is_empty() {
            None
        } else {
            Some(DriftNotice {
                tenant: tenant.to_string(),
                pass,
                elements_added: absorbed,
                diff: diff.clone(),
            })
        };
        t.last_schema = schema.clone();
        let cap = self.opts.history;
        t.push_history(pass, schema, cap);
        (Response::json(200, body), notice)
    }

    fn schema(&self, tenant: &str, req: &Request) -> Response {
        let Some(handle) = self.tenant(tenant) else {
            return unknown_tenant(tenant);
        };
        let format = req.param("format").unwrap_or("strict");
        if format != "strict" && format != "json" {
            return Response::error(
                400,
                "bad-query",
                &format!("unknown format '{format}' (want strict or json)"),
            );
        }
        let mut t = handle.lock().expect("tenant state poisoned");
        let schema = t.state.finalize_cached();
        let strict = pg_schema_strict(&schema, "Discovered");
        if format == "json" {
            Response::json(
                200,
                format!(
                    "{{\"tenant\":\"{}\",\"pass\":{},\"node_types\":{},\"edge_types\":{},\
                     \"schema\":\"{}\"}}",
                    json_escape(tenant),
                    t.pass,
                    schema.node_types.len(),
                    schema.edge_types.len(),
                    json_escape(&strict)
                ),
            )
        } else {
            Response::text(200, strict)
        }
    }

    fn stats(&self, tenant: &str) -> Response {
        let Some(handle) = self.tenant(tenant) else {
            return unknown_tenant(tenant);
        };
        let mut t = handle.lock().expect("tenant state poisoned");
        let schema = t.state.finalize_cached();
        let cache = t.cache.stats();
        let w = &t.warnings;
        Response::json(
            200,
            format!(
                "{{\"tenant\":\"{}\",\"pass\":{},\"elements_ingested\":{},\"pooled_types\":{},\
                 \"node_types\":{},\"edge_types\":{},\"pending_edges\":{},\"history\":{},\
                 \"cache\":{{\"entries\":{},\"hits\":{},\"misses\":{}}},\
                 \"warnings\":{{\"cross_chunk_edges\":{},\"unresolved_edges\":{},\
                 \"deferred_edges\":{},\"evicted_edges\":{},\"duplicate_nodes\":{}}}}}",
                json_escape(tenant),
                t.pass,
                t.elements,
                t.state.pooled_types(),
                schema.node_types.len(),
                schema.edge_types.len(),
                t.pending.len(),
                t.history.len(),
                t.cache.len(),
                cache.hits,
                cache.misses,
                w.cross_chunk_edges,
                w.unresolved_edges,
                w.deferred_edges,
                w.evicted_edges,
                w.duplicate_nodes
            ),
        )
    }

    fn diff(&self, tenant: &str, req: &Request) -> Response {
        let Some(handle) = self.tenant(tenant) else {
            return unknown_tenant(tenant);
        };
        let since: u64 = match req.param("since") {
            None => 0,
            Some(v) => match v.parse() {
                Ok(n) => n,
                Err(_) => {
                    return Response::error(
                        400,
                        "bad-query",
                        &format!("since must be a pass number, got '{v}'"),
                    )
                }
            },
        };
        let mut t = handle.lock().expect("tenant state poisoned");
        if since > t.pass {
            return Response::error(
                400,
                "bad-query",
                &format!("since={since} is ahead of the current pass {}", t.pass),
            );
        }
        let Some(old) = t
            .history
            .iter()
            .find(|(p, _)| *p == since)
            .map(|(_, s)| s.clone())
        else {
            return Response::error(
                404,
                "unknown-pass",
                &format!(
                    "pass {since} is no longer in the history window (oldest retained: {})",
                    t.history.front().map(|(p, _)| *p).unwrap_or(0)
                ),
            );
        };
        let current = t.state.finalize_cached();
        let diff = diff_schemas(&old, &current);
        Response::json(
            200,
            format!(
                "{{\"tenant\":\"{}\",\"since\":{since},\"pass\":{},\"drift\":{},\
                 \"monotone\":{},\"diff\":{}}}",
                json_escape(tenant),
                t.pass,
                !diff.is_empty(),
                diff.is_monotone(),
                diff_json(&diff)
            ),
        )
    }

    fn checkpoint(&self, tenant: &str) -> Response {
        let Some(dir) = self.opts.state_dir.clone() else {
            return Response::error(
                400,
                "no-state-dir",
                "the server was started without --state-dir; checkpointing is disabled",
            );
        };
        let Some(handle) = self.tenant(tenant) else {
            return unknown_tenant(tenant);
        };
        if let Err(e) = fs::create_dir_all(&dir) {
            return Response::error(
                500,
                "checkpoint-failed",
                &format!("cannot create {}: {e}", dir.display()),
            );
        }
        let t = handle.lock().expect("tenant state poisoned");
        let watch = WatchCheckpoint {
            input: tenant.to_string(),
            format: "serve".to_string(),
            pass: t.pass,
            warnings: t.warnings,
            files: Vec::new(),
        };
        let snap = context_snapshot_cached(
            &self.snapshot_config,
            &t.state,
            &t.registry,
            Some(&watch),
            &t.pending,
            Some(&t.cache),
        );
        let path = dir.join(format!("{tenant}.snapshot"));
        let rotated = if let Some(keep) = self.opts.keep {
            rotate_chain(&dir, tenant, keep)
        } else {
            0
        };
        match snap.write_atomic(&path) {
            Ok(()) => Response::json(
                200,
                format!(
                    "{{\"tenant\":\"{}\",\"pass\":{},\"path\":\"{}\",\"rotated\":{rotated}}}",
                    json_escape(tenant),
                    t.pass,
                    json_escape(&path.display().to_string())
                ),
            ),
            Err(e) => Response::error(500, "checkpoint-failed", &e.to_string()),
        }
    }
}

fn unknown_tenant(tenant: &str) -> Response {
    Response::error(
        404,
        "unknown-tenant",
        &format!("no tenant '{tenant}' — POST /v1/{tenant}/ingest creates it"),
    )
}

fn method_not_allowed(allow: &str) -> Response {
    Response::error(
        405,
        "method-not-allowed",
        &format!("this route accepts {allow} only"),
    )
}

/// Shift `<tenant>.snapshot` into a `.1..keep` rotation chain, dropping
/// the oldest link. Returns how many links were shifted. Chains are keyed
/// by the full tenant name, so two tenants' chains can never
/// cross-contaminate.
fn rotate_chain(dir: &Path, tenant: &str, keep: usize) -> usize {
    if keep == 0 {
        return 0;
    }
    let link = |i: usize| dir.join(format!("{tenant}.snapshot.{i}"));
    let _ = fs::remove_file(link(keep));
    let mut shifted = 0;
    for i in (1..keep).rev() {
        if link(i).exists() && fs::rename(link(i), link(i + 1)).is_ok() {
            shifted += 1;
        }
    }
    let current = dir.join(format!("{tenant}.snapshot"));
    if current.exists() && fs::rename(&current, link(1)).is_ok() {
        shifted += 1;
    }
    shifted
}

/// Scan `dir` for `<tenant>.snapshot` files and rebuild each tenant's
/// state. Rotated chain links (`.snapshot.N`) and files whose stem is not
/// a valid tenant name are skipped.
fn resume_tenants(
    dir: &Path,
    config: &SnapshotConfig,
) -> Result<Vec<(String, TenantState)>, String> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(fname) = name.to_str() else { continue };
        let Some(tenant) = fname.strip_suffix(".snapshot") else {
            continue;
        };
        if !valid_tenant(tenant) {
            continue;
        }
        let path = entry.path();
        let load = |e: &dyn std::fmt::Display| format!("{e} (while resuming {})", path.display());
        let snap = Snapshot::read(&path).map_err(|e| load(&e))?;
        let ctx = ResumeContext::from_snapshot(&snap).map_err(|e| load(&e))?;
        let cache = sigcache_from_snapshot(&snap, DEFAULT_CACHE_CAP).map_err(|e| load(&e))?;
        ctx.config.ensure_matches(config).map_err(|e| load(&e))?;
        let pass = ctx.watch.as_ref().map(|w| w.pass).unwrap_or(0);
        let warnings = ctx.watch.as_ref().map(|w| w.warnings).unwrap_or_default();
        let last_schema = ctx.state.finalize();
        out.push((
            tenant.to_string(),
            TenantState {
                state: ctx.state,
                registry: ctx.registry,
                pending: ctx.pending,
                cache,
                pass,
                elements: 0,
                warnings,
                history: VecDeque::from([(pass, last_schema.clone())]),
                last_schema,
            },
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// HTTP/1.1 protocol layer
// ---------------------------------------------------------------------------

enum LineErr {
    /// Clean EOF before any byte of the line.
    Eof,
    /// EOF mid-line.
    Truncated,
    /// Read timeout; `partial` is true when some bytes had arrived.
    Timeout {
        partial: bool,
    },
    TooLong,
    Io,
}

/// Read one CRLF- (or LF-) terminated line, never buffering more than
/// `max` bytes — the bound that keeps a hostile client from ballooning
/// memory with an unterminated request line.
fn read_line_bounded<R: BufRead>(r: &mut R, max: usize) -> Result<Vec<u8>, LineErr> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(LineErr::Timeout {
                    partial: !line.is_empty(),
                })
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(LineErr::Io),
        };
        if buf.is_empty() {
            return Err(if line.is_empty() {
                LineErr::Eof
            } else {
                LineErr::Truncated
            });
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            r.consume(pos + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.len() > max {
                return Err(LineErr::TooLong);
            }
            return Ok(line);
        }
        let taken = buf.len();
        line.extend_from_slice(buf);
        r.consume(taken);
        if line.len() > max {
            return Err(LineErr::TooLong);
        }
    }
}

enum ReadOutcome {
    /// A complete, well-framed request.
    Ok(Request),
    /// Protocol violation: answer with this response, then close.
    Bad(Response),
    /// Clean EOF or idle keep-alive timeout: close silently.
    Hangup,
}

fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> ReadOutcome {
    let line = match read_line_bounded(r, MAX_REQUEST_LINE) {
        Ok(l) => l,
        Err(LineErr::Eof) | Err(LineErr::Io) => return ReadOutcome::Hangup,
        Err(LineErr::Timeout { partial: false }) => return ReadOutcome::Hangup,
        Err(LineErr::Timeout { partial: true }) => {
            return ReadOutcome::Bad(
                Response::error(408, "timeout", "request arrived too slowly").closing(),
            )
        }
        Err(LineErr::Truncated) => {
            return ReadOutcome::Bad(
                Response::error(400, "bad-request-line", "connection closed mid-request").closing(),
            )
        }
        Err(LineErr::TooLong) => {
            return ReadOutcome::Bad(
                Response::error(
                    414,
                    "request-line-too-long",
                    &format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                )
                .closing(),
            )
        }
    };
    let Ok(line) = String::from_utf8(line) else {
        return ReadOutcome::Bad(
            Response::error(400, "bad-request-line", "request line is not UTF-8").closing(),
        );
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return ReadOutcome::Bad(
                Response::error(
                    400,
                    "bad-request-line",
                    "expected 'METHOD SP TARGET SP HTTP/1.1'",
                )
                .closing(),
            )
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return ReadOutcome::Bad(
            Response::error(
                505,
                "unsupported-version",
                &format!("'{version}' is not HTTP/1.0 or HTTP/1.1"),
            )
            .closing(),
        );
    }
    if !target.starts_with('/') {
        return ReadOutcome::Bad(
            Response::error(400, "bad-request-line", "target must be an absolute path").closing(),
        );
    }

    let mut content_length: Option<u64> = None;
    let mut connection_close = version == "HTTP/1.0";
    let mut chunked = false;
    let mut header_count = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let hline = match read_line_bounded(r, MAX_HEADER_LINE) {
            Ok(l) => l,
            Err(LineErr::TooLong) => {
                return ReadOutcome::Bad(
                    Response::error(
                        431,
                        "headers-too-large",
                        &format!("a header line exceeds {MAX_HEADER_LINE} bytes"),
                    )
                    .closing(),
                )
            }
            Err(LineErr::Timeout { .. }) => {
                return ReadOutcome::Bad(
                    Response::error(408, "timeout", "headers arrived too slowly").closing(),
                )
            }
            _ => return ReadOutcome::Hangup,
        };
        if hline.is_empty() {
            break;
        }
        header_count += 1;
        header_bytes += hline.len();
        if header_count > MAX_HEADERS || header_bytes > MAX_HEADER_BYTES {
            return ReadOutcome::Bad(
                Response::error(
                    431,
                    "headers-too-large",
                    &format!("more than {MAX_HEADERS} headers or {MAX_HEADER_BYTES} header bytes"),
                )
                .closing(),
            );
        }
        let Ok(hline) = String::from_utf8(hline) else {
            return ReadOutcome::Bad(
                Response::error(400, "bad-header", "header line is not UTF-8").closing(),
            );
        };
        let Some((name, value)) = hline.split_once(':') else {
            return ReadOutcome::Bad(
                Response::error(400, "bad-header", &format!("header without ':': '{hline}'"))
                    .closing(),
            );
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<u64>() {
                Ok(n) => content_length = Some(n),
                Err(_) => {
                    return ReadOutcome::Bad(
                        Response::error(
                            400,
                            "bad-content-length",
                            &format!("'{value}' is not a byte count"),
                        )
                        .closing(),
                    )
                }
            },
            "transfer-encoding" => chunked = true,
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    connection_close = true;
                } else if v.contains("keep-alive") {
                    connection_close = false;
                }
            }
            _ => {}
        }
    }
    if chunked {
        return ReadOutcome::Bad(
            Response::error(
                501,
                "chunked-not-supported",
                "send a Content-Length body instead of Transfer-Encoding",
            )
            .closing(),
        );
    }
    // RFC 7230 §3.3.3: a request with neither Content-Length nor
    // Transfer-Encoding has an empty body — `curl -X POST url` sends
    // exactly that for body-less verbs like checkpoint.
    let length = content_length.unwrap_or(0);
    if length > max_body as u64 {
        return ReadOutcome::Bad(
            Response::error(
                413,
                "body-too-large",
                &format!("body of {length} bytes exceeds the {max_body}-byte limit"),
            )
            .closing(),
        );
    }
    let mut body = vec![0u8; length as usize];
    if length > 0 {
        let mut read = 0usize;
        while read < body.len() {
            match r.read(&mut body[read..]) {
                Ok(0) => {
                    return ReadOutcome::Bad(
                        Response::error(400, "bad-body", "connection closed mid-body").closing(),
                    )
                }
                Ok(n) => read += n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return ReadOutcome::Bad(
                        Response::error(408, "timeout", "body arrived too slowly").closing(),
                    )
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Hangup,
            }
        }
    }
    let mut req = Request::new(method, target, body);
    req.close = connection_close;
    ReadOutcome::Ok(req)
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

fn write_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        resp.status,
        reason_phrase(resp.status),
        resp.content_type,
        resp.body.len(),
        if resp.close { "close" } else { "keep-alive" }
    )?;
    w.write_all(&resp.body)?;
    w.flush()
}

fn handle_connection(core: &ServeCore, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(core.opts.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let (resp, notice, keep) = match read_request(&mut reader, core.opts.max_body) {
            ReadOutcome::Ok(req) => {
                let client_keep = !req.close;
                let (resp, notice) = core.dispatch(&req);
                let keep = client_keep && !resp.close;
                (resp, notice, keep)
            }
            ReadOutcome::Bad(resp) => (resp, None, false),
            ReadOutcome::Hangup => return,
        };
        if write_response(&mut writer, &resp).is_err() {
            return;
        }
        if let Some(notice) = notice {
            core.fire_drift(&notice);
        }
        if !keep {
            return;
        }
    }
}

/// A running server: the accept loop plus its worker pool.
///
/// Dropped without [`RunningServer::shutdown`], the background threads are
/// detached and die with the process — call `shutdown` for a clean join
/// (tests do, so worker panics surface).
pub struct RunningServer {
    addr: SocketAddr,
    core: Arc<ServeCore>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound socket address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server core.
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// Stop accepting, drain the worker pool and join every thread.
    /// In-flight requests finish; queued-but-unserved connections are
    /// dropped.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:7171`; port 0 picks an ephemeral port) and
/// serve `core` until [`RunningServer::shutdown`].
pub fn bind(addr: &str, core: Arc<ServeCore>) -> Result<RunningServer, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let workers = core.opts.workers.max(1);
    let accept = {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        thread::Builder::new()
            .name("pg-hive-accept".into())
            .spawn(move || accept_loop(listener, core, stop, workers))
            .map_err(|e| format!("cannot spawn accept thread: {e}"))?
    };
    Ok(RunningServer {
        addr: local,
        core,
        stop,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, core: Arc<ServeCore>, stop: Arc<AtomicBool>, workers: usize) {
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let pool: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let rx = Arc::clone(&rx);
            let core = Arc::clone(&core);
            thread::Builder::new()
                .name(format!("pg-hive-worker-{i}"))
                .spawn(move || loop {
                    let conn = rx.lock().expect("worker queue poisoned").recv();
                    match conn {
                        Ok(stream) => handle_connection(&core, stream),
                        Err(_) => return,
                    }
                })
                .expect("cannot spawn worker thread")
        })
        .collect();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = conn {
            let _ = tx.send(stream);
        }
    }
    drop(tx);
    for handle in pool {
        let _ = handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn test_core(opts: ServeOptions) -> ServeCore {
        ServeCore::new(Discoverer::new(PipelineConfig::elsh_adaptive()), opts).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pg-hive-serve-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const BATCH_A: &str = "\
N 1 Person name=Ada,born=1815\n\
N 2 Person name=Grace,born=1906\n\
E 1 2 KNOWS since=1940\n";

    const BATCH_B: &str = "\
N 3 Org name=RoyalSociety,founded=1660\n\
E 1 3 MEMBER_OF from=1835\n";

    fn ingest(core: &ServeCore, tenant: &str, body: &str) -> Response {
        let req = Request::new("POST", &format!("/v1/{tenant}/ingest"), body.into());
        let (resp, notice) = core.dispatch(&req);
        if let Some(n) = notice {
            core.fire_drift(&n);
        }
        resp
    }

    fn schema_bytes(core: &ServeCore, tenant: &str) -> String {
        let req = Request::new("GET", &format!("/v1/{tenant}/schema"), Vec::new());
        let (resp, _) = core.dispatch(&req);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        String::from_utf8(resp.body).unwrap()
    }

    /// Serial oracle: replay the batches in the given order through the
    /// offline shard mechanics — fresh reader per batch, registry merge,
    /// stub resolution of carried edges — one batch at a time, no server.
    fn oracle(batches: &[&str]) -> String {
        let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
        let cache = SignatureCache::default();
        let mut state = discoverer.new_state();
        let mut registry = LabelSetRegistry::default();
        let mut pending = Vec::new();
        for batch in batches {
            let source: Box<dyn RawGraphSource + Send> =
                Box::new(PgtSource::new(Cursor::new(batch.as_bytes().to_vec())));
            let mut reader = ChunkedTextReader::with_registry(
                source,
                DEFAULT_CHUNK_SIZE,
                LabelSetRegistry::default(),
            );
            reader.set_carry_unresolved(true);
            let mut chunks = Vec::new();
            while let Some(chunk) = reader.next_chunk().unwrap() {
                chunks.push(chunk);
            }
            discoverer.absorb_stream_cached(chunks, &mut state, 1, &cache);
            pending.extend(reader.take_pending());
            registry.merge(&reader.into_registry());
            let (left, _) = discoverer.resolve_pending(&mut state, &registry, pending);
            pending = left;
        }
        pg_schema_strict(&state.finalize(), "Discovered")
    }

    #[test]
    fn ingest_matches_serial_oracle() {
        let core = test_core(ServeOptions::default());
        assert_eq!(ingest(&core, "t1", BATCH_A).status, 200);
        assert_eq!(ingest(&core, "t1", BATCH_B).status, 200);
        assert_eq!(schema_bytes(&core, "t1"), oracle(&[BATCH_A, BATCH_B]));
    }

    #[test]
    fn ingest_order_is_irrelevant() {
        let ab = test_core(ServeOptions::default());
        ingest(&ab, "t", BATCH_A);
        ingest(&ab, "t", BATCH_B);
        let ba = test_core(ServeOptions::default());
        ingest(&ba, "t", BATCH_B);
        ingest(&ba, "t", BATCH_A);
        assert_eq!(schema_bytes(&ab, "t"), schema_bytes(&ba, "t"));
    }

    #[test]
    fn cross_request_edges_resolve_later() {
        // The edge's endpoint 3 is only declared by the second request.
        let core = test_core(ServeOptions::default());
        let first = "N 1 Person name=Ada\nE 1 3 MEMBER_OF from=1835\n";
        let second = "N 3 Org name=RoyalSociety\n";
        assert_eq!(ingest(&core, "t", first).status, 200);
        let resp = ingest(&core, "t", second);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"elements_resolved\":1"), "{body}");
        assert_eq!(
            schema_bytes(&core, "t"),
            oracle(&[
                "N 1 Person name=Ada\nN 3 Org name=RoyalSociety\nE 1 3 MEMBER_OF from=1835\n"
            ])
        );
    }

    #[test]
    fn bad_body_leaves_tenant_untouched() {
        let core = test_core(ServeOptions::default());
        ingest(&core, "t", BATCH_A);
        let before = schema_bytes(&core, "t");
        let resp = ingest(&core, "t", "N 9 Broken\nnot a record at all\n");
        assert_eq!(resp.status, 400);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"error\":\"bad-body\""), "{body}");
        assert_eq!(
            schema_bytes(&core, "t"),
            before,
            "failed ingest must be atomic"
        );
    }

    #[test]
    fn tenants_are_isolated() {
        let core = test_core(ServeOptions::default());
        ingest(&core, "a", BATCH_A);
        ingest(&core, "b", BATCH_B);
        assert_eq!(schema_bytes(&core, "a"), oracle(&[BATCH_A]));
        assert_eq!(schema_bytes(&core, "b"), oracle(&[BATCH_B]));
        assert_eq!(core.tenant_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn named_errors_cover_the_route_space() {
        let core = test_core(ServeOptions::default());
        let check = |method: &str, target: &str, status: u16, name: &str| {
            let (resp, _) = core.dispatch(&Request::new(method, target, Vec::new()));
            assert_eq!(resp.status, status, "{method} {target}");
            let body = String::from_utf8(resp.body).unwrap();
            assert!(
                body.contains(&format!("\"error\":\"{name}\"")),
                "{method} {target}: {body}"
            );
        };
        check("GET", "/nope", 404, "unknown-route");
        check("GET", "/v1/solo", 404, "unknown-route");
        check("GET", "/v1/t/frobnicate", 404, "unknown-route");
        check("GET", "/v1/ghost/schema", 404, "unknown-tenant");
        check("GET", "/v1/ghost/stats", 404, "unknown-tenant");
        check("GET", "/v1/ghost/diff", 404, "unknown-tenant");
        check("GET", "/v1/bad..%2f/schema", 400, "invalid-tenant");
        check("GET", "/v1/.hidden/schema", 400, "invalid-tenant");
        check("POST", "/v1/t/schema", 405, "method-not-allowed");
        check("GET", "/v1/t/ingest", 405, "method-not-allowed");
        check("POST", "/healthz", 405, "method-not-allowed");
        check("POST", "/v1/t/checkpoint", 400, "no-state-dir");
        let (resp, _) = core.dispatch(&Request::new("POST", "/v1/t/ingest?format=xml", Vec::new()));
        assert_eq!(resp.status, 400);
        ingest(&core, "t", BATCH_A);
        check("GET", "/v1/t/diff?since=99", 400, "bad-query");
        check("GET", "/v1/t/diff?since=nope", 400, "bad-query");
    }

    #[test]
    fn diff_since_tracks_history() {
        let core = test_core(ServeOptions::default());
        ingest(&core, "t", BATCH_A);
        ingest(&core, "t", BATCH_B);
        let (resp, _) = core.dispatch(&Request::new("GET", "/v1/t/diff?since=1", Vec::new()));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"drift\":true"), "{body}");
        assert!(body.contains("\"monotone\":true"), "{body}");
        // since == current pass: no drift.
        let (resp, _) = core.dispatch(&Request::new("GET", "/v1/t/diff?since=2", Vec::new()));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"drift\":false"), "{body}");
        // since=0 diffs against the empty schema.
        let (resp, _) = core.dispatch(&Request::new("GET", "/v1/t/diff", Vec::new()));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"since\":0"), "{body}");
        assert!(body.contains("\"drift\":true"), "{body}");
    }

    #[test]
    fn checkpoint_restart_resumes_warm() {
        let dir = temp_dir("warm");
        let opts = ServeOptions {
            state_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };
        let core = test_core(opts.clone());
        ingest(&core, "t", BATCH_A);
        let (resp, _) = core.dispatch(&Request::new("POST", "/v1/t/checkpoint", Vec::new()));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let before = schema_bytes(&core, "t");
        drop(core);

        // "Restart": a fresh core over the same state dir.
        let core = test_core(opts);
        assert_eq!(core.tenant_names(), vec!["t".to_string()]);
        assert_eq!(schema_bytes(&core, "t"), before);
        // Pass numbering continues and the resumed baseline produces no
        // spurious drift on an identical re-ingest.
        let resp = ingest(&core, "t", BATCH_A);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"pass\":2"), "{body}");
        assert!(body.contains("\"drift\":false"), "{body}");
        // And the rest of the data still lands correctly post-restart.
        ingest(&core, "t", BATCH_B);
        assert_eq!(
            schema_bytes(&core, "t"),
            oracle(&[BATCH_A, BATCH_A, BATCH_B])
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_chains_stay_per_tenant() {
        let dir = temp_dir("rotate");
        let opts = ServeOptions {
            state_dir: Some(dir.clone()),
            keep: Some(2),
            ..ServeOptions::default()
        };
        let core = test_core(opts);
        for round in 0..3 {
            ingest(&core, "alpha", BATCH_A);
            ingest(&core, "beta", BATCH_B);
            for t in ["alpha", "beta"] {
                let (resp, _) = core.dispatch(&Request::new(
                    "POST",
                    &format!("/v1/{t}/checkpoint"),
                    Vec::new(),
                ));
                assert_eq!(resp.status, 200, "round {round}");
            }
        }
        for t in ["alpha", "beta"] {
            for name in [
                format!("{t}.snapshot"),
                format!("{t}.snapshot.1"),
                format!("{t}.snapshot.2"),
            ] {
                assert!(dir.join(&name).exists(), "missing {name}");
            }
            assert!(!dir.join(format!("{t}.snapshot.3")).exists());
        }
        // Every link of alpha's chain resumes to an alpha schema, never
        // beta's (no cross-contamination).
        for link in ["alpha.snapshot", "alpha.snapshot.1", "alpha.snapshot.2"] {
            let snap = Snapshot::read(&dir.join(link)).unwrap();
            let ctx = ResumeContext::from_snapshot(&snap).unwrap();
            assert_eq!(ctx.watch.as_ref().unwrap().input, "alpha", "{link}");
            let strict = pg_schema_strict(&ctx.state.finalize(), "Discovered");
            assert!(strict.contains("Person"), "{link}: {strict}");
            assert!(!strict.contains("RoyalSociety"), "{link}: {strict}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drift_hook_fires_outside_the_tenant_lock() {
        let mut core = test_core(ServeOptions::default());
        let seen: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        core.set_drift_hook(Box::new(move |n| {
            sink.lock().unwrap().push((n.tenant.clone(), n.pass));
        }));
        ingest(&core, "t", BATCH_A);
        ingest(&core, "t", BATCH_A); // identical → no drift
        ingest(&core, "t", BATCH_B);
        let events = seen.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![("t".to_string(), 1), ("t".to_string(), 3)],
            "drift fires only on schema change"
        );
    }

    /// Hand-rolled two-thread interleaving exerciser (loom is not
    /// vendored): thread A hammers the tenant map with fresh inserts
    /// (map write lock) while thread B ingests into one hot tenant
    /// (map read lock, then tenant mutex). Any violation of the
    /// documented lock order would deadlock here; the element count
    /// proves no ingest was lost or doubled.
    #[test]
    fn interleaved_map_insert_vs_ingest() {
        const ROUNDS: usize = 24;
        let core = Arc::new(test_core(ServeOptions::default()));
        let barrier = Arc::new(Barrier::new(2));

        let inserter = {
            let core = Arc::clone(&core);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                for round in 0..ROUNDS {
                    barrier.wait();
                    let resp = ingest(&core, &format!("fresh-{round}"), BATCH_B);
                    assert_eq!(resp.status, 200);
                }
            })
        };
        let ingester = {
            let core = Arc::clone(&core);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                    let resp = ingest(&core, "hot", BATCH_A);
                    assert_eq!(resp.status, 200);
                }
            })
        };
        inserter.join().unwrap();
        ingester.join().unwrap();

        // ROUNDS fresh tenants + the hot one all exist.
        assert_eq!(core.tenant_names().len(), ROUNDS + 1);
        // The hot tenant absorbed exactly ROUNDS copies of BATCH_A
        // (3 elements each) — nothing lost, nothing doubled.
        let (resp, _) = core.dispatch(&Request::new("GET", "/v1/hot/stats", Vec::new()));
        let body = String::from_utf8(resp.body).unwrap();
        let want = format!("\"elements_ingested\":{}", ROUNDS * 3);
        assert!(body.contains(&want), "{body}");
        assert_eq!(schema_bytes(&core, "hot"), oracle(&[BATCH_A]));
    }

    #[test]
    fn http_request_parser_rejects_malformed_input() {
        let parse = |raw: &str| {
            let mut cursor = Cursor::new(raw.as_bytes().to_vec());
            read_request(&mut cursor, DEFAULT_MAX_BODY)
        };
        let bad = |raw: &str, status: u16, name: &str| match parse(raw) {
            ReadOutcome::Bad(resp) => {
                assert_eq!(resp.status, status, "{raw:?}");
                assert!(resp.close, "{raw:?} must close the connection");
                let body = String::from_utf8(resp.body).unwrap();
                assert!(body.contains(name), "{raw:?}: {body}");
            }
            _ => panic!("{raw:?} should be rejected"),
        };
        bad("GARBAGE\r\n\r\n", 400, "bad-request-line");
        bad("GET /x HTTP/2.0\r\n\r\n", 505, "unsupported-version");
        bad("GET x HTTP/1.1\r\n\r\n", 400, "bad-request-line");
        bad(
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            400,
            "bad-header",
        );
        bad(
            "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            400,
            "bad-content-length",
        );
        bad(
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            501,
            "chunked-not-supported",
        );
        bad(
            &format!(
                "GET /{} HTTP/1.1\r\n\r\n",
                "a".repeat(MAX_REQUEST_LINE + 10)
            ),
            414,
            "request-line-too-long",
        );
        bad(
            &format!(
                "GET /x HTTP/1.1\r\nx: {}\r\n\r\n",
                "v".repeat(MAX_HEADER_LINE + 10)
            ),
            431,
            "headers-too-large",
        );
        bad(
            "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
            400,
            "bad-body",
        );
        match parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n") {
            ReadOutcome::Ok(req) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/healthz");
                assert!(!req.close);
            }
            _ => panic!("well-formed request should parse"),
        }
        match parse("POST /v1/t/checkpoint HTTP/1.1\r\n\r\n") {
            ReadOutcome::Ok(req) => {
                // RFC 7230 §3.3.3: no Content-Length and no
                // Transfer-Encoding means an empty body — this is what
                // `curl -X POST` sends for body-less verbs.
                assert_eq!(req.method, "POST");
                assert!(req.body.is_empty());
            }
            _ => panic!("length-less POST should parse as an empty body"),
        }
        match parse("GET /x?a=1&b=2 HTTP/1.0\r\n\r\n") {
            ReadOutcome::Ok(req) => {
                assert_eq!(req.param("a"), Some("1"));
                assert_eq!(req.param("b"), Some("2"));
                assert!(req.close, "HTTP/1.0 defaults to close");
            }
            _ => panic!("query parse failed"),
        }
        match parse("") {
            ReadOutcome::Hangup => {}
            _ => panic!("clean EOF should hang up silently"),
        }
    }

    #[test]
    fn body_too_large_is_refused_without_reading() {
        let raw = format!(
            "POST /v1/t/ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            DEFAULT_MAX_BODY + 1
        );
        let mut cursor = Cursor::new(raw.into_bytes());
        match read_request(&mut cursor, DEFAULT_MAX_BODY) {
            ReadOutcome::Bad(resp) => {
                assert_eq!(resp.status, 413);
                assert!(String::from_utf8(resp.body)
                    .unwrap()
                    .contains("body-too-large"));
            }
            _ => panic!("oversized body should be refused"),
        }
    }

    #[test]
    fn tenant_name_validation() {
        assert!(valid_tenant("prod"));
        assert!(valid_tenant("team-a_v2.schema"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant(".hidden"));
        assert!(!valid_tenant("a/b"));
        assert!(!valid_tenant("a b"));
        assert!(!valid_tenant(&"x".repeat(65)));
    }
}
