//! Stages (e)–(g): property constraints, data-type inference, cardinalities
//! (§4.4).
//!
//! The passes come in two granularities: per-type functions
//! ([`infer_node_type_datatypes`], [`infer_edge_type_datatypes`],
//! [`compute_edge_type_cardinality`]) that
//! [`crate::state::SchemaState::postprocess`] drives over its pooled types,
//! and whole-[`SchemaGraph`] wrappers ([`infer_datatypes`],
//! [`compute_cardinalities`]) for callers holding a resolved schema.

use crate::config::SamplingConfig;
use crate::schema::{Cardinality, EdgeType, NodeType, PropertySpec, SchemaGraph};
use pg_hive_graph::{EdgeId, NodeId, PropertyGraph, Symbol, Value, ValueKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Stage (e): the MANDATORY/OPTIONAL constraint is fully determined by the
/// occurrence counts accumulated during extraction (`f_T(p) = 1` ⇒
/// mandatory), so this pass only *reads* them. Returns, per node type, the
/// `(key, mandatory)` pairs — the same information serialization uses.
pub fn node_property_constraints(schema: &SchemaGraph) -> Vec<Vec<(String, bool)>> {
    schema
        .node_types
        .iter()
        .map(|t| {
            t.props
                .iter()
                .map(|(k, spec)| (k.clone(), spec.is_mandatory(t.instance_count)))
                .collect()
        })
        .collect()
}

/// Stage (e) for edge types.
pub fn edge_property_constraints(schema: &SchemaGraph) -> Vec<Vec<(String, bool)>> {
    schema
        .edge_types
        .iter()
        .map(|t| {
            t.props
                .iter()
                .map(|(k, spec)| (k.clone(), spec.is_mandatory(t.instance_count)))
                .collect()
        })
        .collect()
}

/// Priority-based inference of a single lexical value (§4.4): integer,
/// float, boolean, ISO date/timestamp, else string.
pub fn infer_value_kind(lexical: &str) -> ValueKind {
    Value::parse_lexical(lexical).kind()
}

/// Join the kinds of a sequence of lexical values ("the most specific
/// compatible type", §4.7).
pub fn infer_kind_of_values<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Option<ValueKind> {
    let mut kind: Option<ValueKind> = None;
    for v in values {
        let k = infer_value_kind(v);
        kind = Some(match kind {
            Some(existing) => existing.join(k),
            None => k,
        });
    }
    kind
}

/// The kind of one [`Value`] through its *lexical* form — the §4.4 rule is
/// defined on serialized values, so a `Str("123")` re-infers as Integer.
/// Strings are inspected in place; every other variant is formatted into
/// `scratch` (its `Display` is exactly [`Value::lexical`]) so the hot loop
/// never allocates per value.
fn value_kind_via_lexical(v: &Value, scratch: &mut String) -> ValueKind {
    match v {
        Value::Str(s) => infer_value_kind(s),
        other => {
            scratch.clear();
            let _ = write!(scratch, "{other}");
            infer_value_kind(scratch)
        }
    }
}

/// Full-scan stage (f) for one type, shared between nodes and edges: a
/// **single pass** over the members' property slices instead of one member
/// scan per key. Each property is matched against a small sorted
/// `(symbol, slot)` table via binary search and its kind joined into a
/// per-slot accumulator — `ValueKind::join` is a semilattice join
/// (commutative, associative, idempotent), so folding in member order
/// yields exactly the same result as the per-key order the two-scan
/// sampling path uses.
fn infer_type_datatypes_full<'g>(
    props: &mut BTreeMap<String, PropertySpec>,
    g: &PropertyGraph,
    member_props: impl Iterator<Item = &'g [(Symbol, Value)]>,
) {
    let keys: Vec<&String> = props.keys().collect();
    // Keys absent from this batch's store belong to another chunk: skip
    // them, matching the `None => continue` of the sampling path.
    let mut table: Vec<(Symbol, u32)> = keys
        .iter()
        .enumerate()
        .filter_map(|(slot, k)| g.keys().get(k.as_str()).map(|sym| (sym, slot as u32)))
        .collect();
    if table.is_empty() {
        return;
    }
    table.sort_unstable_by_key(|&(sym, _)| sym);
    let mut kinds: Vec<Option<ValueKind>> = vec![None; keys.len()];
    let mut scratch = String::new();
    for slice in member_props {
        for (sym, v) in slice {
            let Ok(i) = table.binary_search_by_key(sym, |&(s, _)| s) else {
                continue;
            };
            let slot = table[i].1 as usize;
            let k = value_kind_via_lexical(v, &mut scratch);
            kinds[slot] = Some(match kinds[slot] {
                Some(prev) => prev.join(k),
                None => k,
            });
        }
    }
    for (spec, kind) in props.values_mut().zip(kinds) {
        if let Some(k) = kind {
            spec.kind = Some(match spec.kind {
                Some(prev) => prev.join(k),
                None => k,
            });
        }
    }
}

/// Stage (f) for one node type: fill `PropertySpec::kind` by scanning the
/// type's member values in `g` — all of them (single-pass fast path), or a
/// sample per [`SamplingConfig`] (fraction of values, floor `min_values`).
/// Kinds join with any previously inferred kind (lattice join, monotone).
pub fn infer_node_type_datatypes(
    t: &mut NodeType,
    g: &PropertyGraph,
    sampling: Option<&SamplingConfig>,
) {
    if sampling.is_none() {
        let members = t
            .members
            .iter()
            .map(|&m| g.node(NodeId(m)).props.as_slice());
        infer_type_datatypes_full(&mut t.props, g, members);
        return;
    }
    let keys: Vec<String> = t.props.keys().cloned().collect();
    for key in keys {
        let sym = match g.keys().get(&key) {
            Some(s) => s,
            None => continue, // key from another batch's store
        };
        let holders: Vec<u32> = t
            .members
            .iter()
            .copied()
            .filter(|&m| g.node(NodeId(m)).get(sym).is_some())
            .collect();
        let chosen = select_sample(&holders, sampling);
        let mut scratch = String::new();
        let kind = join_kinds(
            chosen
                .iter()
                .map(|&m| g.node(NodeId(m)).get(sym).expect("holder filtered above")),
            &mut scratch,
        );
        if let Some(k) = kind {
            let spec = t.props.get_mut(&key).expect("key listed above");
            spec.kind = Some(match spec.kind {
                Some(prev) => prev.join(k),
                None => k,
            });
        }
    }
}

/// Stage (f) for one edge type (see [`infer_node_type_datatypes`]).
pub fn infer_edge_type_datatypes(
    t: &mut EdgeType,
    g: &PropertyGraph,
    sampling: Option<&SamplingConfig>,
) {
    if sampling.is_none() {
        let members = t
            .members
            .iter()
            .map(|&m| g.edge(EdgeId(m)).props.as_slice());
        infer_type_datatypes_full(&mut t.props, g, members);
        return;
    }
    let keys: Vec<String> = t.props.keys().cloned().collect();
    for key in keys {
        let sym = match g.keys().get(&key) {
            Some(s) => s,
            None => continue,
        };
        let holders: Vec<u32> = t
            .members
            .iter()
            .copied()
            .filter(|&m| g.edge(EdgeId(m)).get(sym).is_some())
            .collect();
        let chosen = select_sample(&holders, sampling);
        let mut scratch = String::new();
        let kind = join_kinds(
            chosen
                .iter()
                .map(|&m| g.edge(EdgeId(m)).get(sym).expect("holder filtered above")),
            &mut scratch,
        );
        if let Some(k) = kind {
            let spec = t.props.get_mut(&key).expect("key listed above");
            spec.kind = Some(match spec.kind {
                Some(prev) => prev.join(k),
                None => k,
            });
        }
    }
}

/// [`infer_kind_of_values`] over [`Value`]s, allocation-free via `scratch`.
fn join_kinds<'a>(
    values: impl Iterator<Item = &'a Value>,
    scratch: &mut String,
) -> Option<ValueKind> {
    let mut kind: Option<ValueKind> = None;
    for v in values {
        let k = value_kind_via_lexical(v, scratch);
        kind = Some(match kind {
            Some(existing) => existing.join(k),
            None => k,
        });
    }
    kind
}

/// Stage (f): fill `PropertySpec::kind` for every type in the schema by
/// scanning member values.
pub fn infer_datatypes(
    schema: &mut SchemaGraph,
    g: &PropertyGraph,
    sampling: Option<&SamplingConfig>,
) {
    for t in &mut schema.node_types {
        infer_node_type_datatypes(t, g, sampling);
    }
    for t in &mut schema.edge_types {
        infer_edge_type_datatypes(t, g, sampling);
    }
}

fn select_sample(holders: &[u32], sampling: Option<&SamplingConfig>) -> Vec<u32> {
    match sampling {
        None => holders.to_vec(),
        Some(cfg) => {
            let want = ((holders.len() as f64 * cfg.fraction).ceil() as usize)
                .max(cfg.min_values)
                .min(holders.len());
            if want >= holders.len() {
                return holders.to_vec();
            }
            // Deterministic partial Fisher–Yates.
            let mut pool = holders.to_vec();
            let mut state = cfg.seed;
            for i in 0..want {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let j = i + (z % (pool.len() - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(want);
            pool
        }
    }
}

/// Stage (g) for one edge type: compute the maximum number of **distinct**
/// targets per source (`max_out`) and distinct sources per target
/// (`max_in`) among its member edges, then merge with any cardinality
/// carried over from earlier batches — upper bounds only grow (monotone,
/// §4.7). Classification happens via [`Cardinality::class`].
pub fn compute_edge_type_cardinality(t: &mut EdgeType, g: &PropertyGraph) {
    if t.members.is_empty() {
        return;
    }
    // Sort + dedup the endpoint pairs, then count run lengths: the longest
    // run of one `src` in the deduplicated `(src, tgt)` order is its number
    // of distinct targets (and symmetrically for `tgt`). Integer sorts beat
    // the per-edge hashing of a map-of-sets here by a wide margin.
    let mut pairs: Vec<(u32, u32)> = t
        .members
        .iter()
        .map(|&m| {
            let e = g.edge(EdgeId(m));
            (e.src.0, e.tgt.0)
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let max_out = longest_run(pairs.iter().map(|&(src, _)| src));
    for p in &mut pairs {
        *p = (p.1, p.0);
    }
    pairs.sort_unstable(); // pairs stay distinct under the swap
    let max_in = longest_run(pairs.iter().map(|&(tgt, _)| tgt));
    let card = Cardinality { max_out, max_in };
    t.cardinality = Some(match t.cardinality {
        Some(prev) => Cardinality {
            max_out: prev.max_out.max(card.max_out),
            max_in: prev.max_in.max(card.max_in),
        },
        None => card,
    });
}

/// Longest run of equal values in an already-sorted sequence.
fn longest_run(sorted: impl Iterator<Item = u32>) -> u64 {
    let mut best = 0u64;
    let mut cur = 0u64;
    let mut prev = None;
    for x in sorted {
        if prev == Some(x) {
            cur += 1;
        } else {
            prev = Some(x);
            cur = 1;
        }
        best = best.max(cur);
    }
    best
}

/// Stage (g): cardinalities (§4.4) for every edge type in the schema.
pub fn compute_cardinalities(schema: &mut SchemaGraph, g: &PropertyGraph) {
    for t in &mut schema.edge_types {
        compute_edge_type_cardinality(t, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{label_set, EdgeType, NodeType, PropertySpec};
    use pg_hive_graph::{GraphBuilder, Value};
    use std::collections::BTreeMap;

    #[test]
    fn infer_value_kind_priority_order() {
        assert_eq!(infer_value_kind("42"), ValueKind::Integer);
        assert_eq!(infer_value_kind("4.5"), ValueKind::Float);
        assert_eq!(infer_value_kind("true"), ValueKind::Boolean);
        assert_eq!(infer_value_kind("1999-12-19"), ValueKind::Date);
        assert_eq!(
            infer_value_kind("1999-12-19T01:02:03"),
            ValueKind::Timestamp
        );
        assert_eq!(infer_value_kind("hello"), ValueKind::String);
    }

    #[test]
    fn kind_join_over_values() {
        assert_eq!(
            infer_kind_of_values(["1", "2", "3"]),
            Some(ValueKind::Integer)
        );
        assert_eq!(infer_kind_of_values(["1", "2.5"]), Some(ValueKind::Float));
        assert_eq!(infer_kind_of_values(["1", "x"]), Some(ValueKind::String));
        assert_eq!(infer_kind_of_values([]), None);
    }

    fn wired_schema() -> (SchemaGraph, PropertyGraph) {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(
            &["Person"],
            &[("age", Value::Int(30)), ("name", Value::from("a"))],
        );
        let n1 = b.add_node(&["Person"], &[("age", Value::Int(40))]);
        let g = b.finish();
        let mut t = NodeType {
            labels: label_set(&["Person"]),
            props: BTreeMap::new(),
            instance_count: 2,
            members: vec![n0.0, n1.0],
        };
        t.props.insert(
            "age".into(),
            PropertySpec {
                occurrences: 2,
                kind: None,
            },
        );
        t.props.insert(
            "name".into(),
            PropertySpec {
                occurrences: 1,
                kind: None,
            },
        );
        let mut s = SchemaGraph::new();
        s.node_types.push(t);
        (s, g)
    }

    #[test]
    fn constraints_from_counts() {
        let (s, _) = wired_schema();
        let cons = node_property_constraints(&s);
        let person = &cons[0];
        assert!(person.contains(&("age".to_string(), true)), "{person:?}");
        assert!(person.contains(&("name".to_string(), false)));
    }

    #[test]
    fn datatype_full_scan() {
        let (mut s, g) = wired_schema();
        infer_datatypes(&mut s, &g, None);
        assert_eq!(s.node_types[0].props["age"].kind, Some(ValueKind::Integer));
        assert_eq!(s.node_types[0].props["name"].kind, Some(ValueKind::String));
    }

    #[test]
    fn datatype_sampling_with_floor_equals_full_scan_on_small_data() {
        let (mut s, g) = wired_schema();
        infer_datatypes(
            &mut s,
            &g,
            Some(&SamplingConfig {
                fraction: 0.1,
                min_values: 1000,
                seed: 1,
            }),
        );
        // Floor 1000 > 2 holders ⇒ effectively full scan.
        assert_eq!(s.node_types[0].props["age"].kind, Some(ValueKind::Integer));
    }

    #[test]
    fn sampling_can_miss_outliers() {
        // 1000 integer values and one trailing string outlier: a small
        // sample (floor 1) will usually call it Integer while the full scan
        // says String — exactly the §5 sampling-error phenomenon.
        let mut b = GraphBuilder::new();
        let mut members = Vec::new();
        for i in 0..1000 {
            members.push(b.add_node(&["T"], &[("x", Value::Int(i))]).0);
        }
        members.push(b.add_node(&["T"], &[("x", Value::from("oops"))]).0);
        let g = b.finish();
        let mut t = NodeType {
            labels: label_set(&["T"]),
            props: BTreeMap::new(),
            instance_count: 1001,
            members,
        };
        t.props.insert(
            "x".into(),
            PropertySpec {
                occurrences: 1001,
                kind: None,
            },
        );
        let mut full = SchemaGraph::new();
        full.node_types.push(t.clone());
        infer_datatypes(&mut full, &g, None);
        assert_eq!(full.node_types[0].props["x"].kind, Some(ValueKind::String));

        let mut sampled = SchemaGraph::new();
        sampled.node_types.push(t);
        infer_datatypes(
            &mut sampled,
            &g,
            Some(&SamplingConfig {
                fraction: 0.01,
                min_values: 1,
                seed: 7,
            }),
        );
        // With 11 of 1001 values sampled the outlier is probably missed.
        // (Deterministic seed: assert the concrete outcome.)
        assert_eq!(
            sampled.node_types[0].props["x"].kind,
            Some(ValueKind::Integer)
        );
    }

    #[test]
    fn cardinalities_from_fig1() {
        // WORKS_AT: persons → exactly one org; org has many employees ⇒ N:1
        // from the paper's Example 8... note max_out/max_in orientation:
        // max_out = 1 (each person one org), max_in = many ⇒ class 0:N per
        // the (max_out, max_in) table; the paper names this case N:1 viewed
        // from the org side. We follow the (max_out, max_in) classification.
        let mut b = GraphBuilder::new();
        let p1 = b.add_node(&["Person"], &[]);
        let p2 = b.add_node(&["Person"], &[]);
        let o = b.add_node(&["Org"], &[]);
        b.add_edge(p1, o, &["WORKS_AT"], &[]);
        b.add_edge(p2, o, &["WORKS_AT"], &[]);
        let g = b.finish();
        let mut s = SchemaGraph::new();
        s.edge_types.push(EdgeType {
            labels: label_set(&["WORKS_AT"]),
            props: BTreeMap::new(),
            endpoints: Default::default(),
            instance_count: 2,
            members: vec![0, 1],
            cardinality: None,
        });
        compute_cardinalities(&mut s, &g);
        let c = s.edge_types[0].cardinality.unwrap();
        assert_eq!(c.max_out, 1);
        assert_eq!(c.max_in, 2);
        assert_eq!(c.class().notation(), "0:N");
    }

    #[test]
    fn cardinality_many_to_many() {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(&["A"], &[]);
        let a2 = b.add_node(&["A"], &[]);
        let c1 = b.add_node(&["B"], &[]);
        let c2 = b.add_node(&["B"], &[]);
        for s in [a1, a2] {
            for t in [c1, c2] {
                b.add_edge(s, t, &["R"], &[]);
            }
        }
        let g = b.finish();
        let mut s = SchemaGraph::new();
        s.edge_types.push(EdgeType {
            labels: label_set(&["R"]),
            props: BTreeMap::new(),
            endpoints: Default::default(),
            instance_count: 4,
            members: vec![0, 1, 2, 3],
            cardinality: None,
        });
        compute_cardinalities(&mut s, &g);
        let c = s.edge_types[0].cardinality.unwrap();
        assert_eq!(c.class().notation(), "M:N");
    }

    #[test]
    fn cardinality_distinct_targets_not_edge_count() {
        // Two parallel edges to the same target count as ONE distinct target.
        let mut b = GraphBuilder::new();
        let a = b.add_node(&["A"], &[]);
        let t = b.add_node(&["B"], &[]);
        b.add_edge(a, t, &["R"], &[]);
        b.add_edge(a, t, &["R"], &[]);
        let g = b.finish();
        let mut s = SchemaGraph::new();
        s.edge_types.push(EdgeType {
            labels: label_set(&["R"]),
            props: BTreeMap::new(),
            endpoints: Default::default(),
            instance_count: 2,
            members: vec![0, 1],
            cardinality: None,
        });
        compute_cardinalities(&mut s, &g);
        let c = s.edge_types[0].cardinality.unwrap();
        assert_eq!(c.class().notation(), "0:1");
    }
}
