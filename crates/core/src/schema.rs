//! The schema graph model (Def. 3.2–3.4) and its merge operations (§4.3,
//! §4.6).
//!
//! Types own *resolved strings* for labels and property keys rather than
//! interner symbols: a schema outlives any single batch and must merge
//! schemas discovered from different stores.
//!
//! Every type also carries aggregate statistics — instance counts,
//! per-property occurrence counts and value-kind joins, and its member
//! element ids — which is what makes incremental merging cheap: constraints
//! (§4.4) are recomputed from the counts, never by rescanning old batches.

use pg_hive_graph::ValueKind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A set of labels, canonically ordered. Empty = unlabeled/ABSTRACT.
pub type LabelSet = BTreeSet<String>;

/// Aggregate information about one property of a type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertySpec {
    /// Number of instances of the type that carry this property.
    pub occurrences: u64,
    /// Inferred data type (lattice join over observed values); `None` until
    /// the datatype pass has run.
    pub kind: Option<ValueKind>,
}

impl PropertySpec {
    /// A property is MANDATORY iff it appears in every instance of its type
    /// (`f_T(p) = 1`, §4.4); otherwise OPTIONAL.
    pub fn is_mandatory(&self, instance_count: u64) -> bool {
        instance_count > 0 && self.occurrences == instance_count
    }
}

/// Edge-type cardinality (§4.4): classification of the pair
/// `(max_out, max_in)` of maximum distinct-target out-degree and
/// distinct-source in-degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cardinality {
    /// Maximum distinct-target out-degree observed for the edge type.
    pub max_out: u64,
    /// Maximum distinct-source in-degree observed for the edge type.
    pub max_in: u64,
}

impl Cardinality {
    /// The paper's interpretation: `(1,1) ⇒ 0:1`, `(>1,1) ⇒ N:1`,
    /// `(1,>1) ⇒ 0:N`, `(>1,>1) ⇒ M:N`. Lower bounds stay at 0 because only
    /// edges are scanned (§4.4).
    pub fn class(&self) -> CardinalityClass {
        match (self.max_out > 1, self.max_in > 1) {
            (false, false) => CardinalityClass::OneToOne,
            (true, false) => CardinalityClass::ManyToOne,
            (false, true) => CardinalityClass::OneToMany,
            (true, true) => CardinalityClass::ManyToMany,
        }
    }
}

/// Named cardinality classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CardinalityClass {
    /// `0:1`
    OneToOne,
    /// `N:1`
    ManyToOne,
    /// `0:N`
    OneToMany,
    /// `M:N`
    ManyToMany,
}

impl CardinalityClass {
    /// The notation used in the paper.
    pub fn notation(self) -> &'static str {
        match self {
            CardinalityClass::OneToOne => "0:1",
            CardinalityClass::ManyToOne => "N:1",
            CardinalityClass::OneToMany => "0:N",
            CardinalityClass::ManyToMany => "M:N",
        }
    }
}

/// A node type `V_s = (λ_n, π_n)` (Def. 3.2) plus aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeType {
    /// Label set; empty for ABSTRACT types (unmatched unlabeled clusters).
    pub labels: LabelSet,
    /// Property key → aggregate spec.
    pub props: BTreeMap<String, PropertySpec>,
    /// Number of instances assigned to this type so far.
    pub instance_count: u64,
    /// Graph-wide indices of the member nodes (used for evaluation,
    /// constraints and datatype inference).
    pub members: Vec<u32>,
}

impl NodeType {
    /// Whether this is an ABSTRACT type (PG-Schema terminology for a type
    /// that could not be matched to any label).
    pub fn is_abstract(&self) -> bool {
        self.labels.is_empty()
    }

    /// Merge `other` into `self` (Lemma 1): labels and properties are
    /// unioned, counts summed, kinds joined — nothing is ever dropped.
    pub fn absorb(&mut self, other: NodeType) {
        self.labels.extend(other.labels);
        merge_props(&mut self.props, other.props);
        self.instance_count += other.instance_count;
        self.members.extend(other.members);
    }

    /// Property-key set (for Jaccard similarity in Algorithm 2).
    pub fn key_set(&self) -> BTreeSet<&str> {
        self.props.keys().map(String::as_str).collect()
    }
}

/// An edge type `E_s = (λ_e, π_e, ρ_e, C_e)` (Def. 3.3) plus aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeType {
    /// The type's label set λ_e (empty = abstract).
    pub labels: LabelSet,
    /// Per-key property specs π_e (presence counts, inferred kinds).
    pub props: BTreeMap<String, PropertySpec>,
    /// Observed (source-labels, target-labels) endpoint pairs — ρ_e,
    /// generalized to a set because merging unions endpoints (Lemma 2).
    pub endpoints: BTreeSet<(LabelSet, LabelSet)>,
    /// Edges covered by this type.
    pub instance_count: u64,
    /// Member edge ids (cleared by the streaming paths — chunk-local ids
    /// do not outlive their chunk).
    pub members: Vec<u32>,
    /// Filled by the cardinality pass (§4.4).
    pub cardinality: Option<Cardinality>,
}

impl EdgeType {
    /// Whether the edge type is unlabeled/ABSTRACT.
    pub fn is_abstract(&self) -> bool {
        self.labels.is_empty()
    }

    /// Merge `other` into `self` (Lemma 2): labels, properties and
    /// endpoints are unioned — no endpoint is lost.
    pub fn absorb(&mut self, other: EdgeType) {
        self.labels.extend(other.labels);
        merge_props(&mut self.props, other.props);
        self.endpoints.extend(other.endpoints);
        self.instance_count += other.instance_count;
        self.members.extend(other.members);
        self.cardinality = match (self.cardinality, other.cardinality) {
            (Some(a), Some(b)) => Some(Cardinality {
                max_out: a.max_out.max(b.max_out),
                max_in: a.max_in.max(b.max_in),
            }),
            (a, b) => a.or(b),
        };
    }

    /// Property-key set (for Jaccard similarity in Algorithm 2).
    pub fn key_set(&self) -> BTreeSet<&str> {
        self.props.keys().map(String::as_str).collect()
    }
}

fn merge_props(into: &mut BTreeMap<String, PropertySpec>, from: BTreeMap<String, PropertySpec>) {
    for (k, spec) in from {
        match into.get_mut(&k) {
            Some(existing) => {
                existing.occurrences += spec.occurrences;
                existing.kind = match (existing.kind, spec.kind) {
                    (Some(a), Some(b)) => Some(a.join(b)),
                    (a, b) => a.or(b),
                };
            }
            None => {
                into.insert(k, spec);
            }
        }
    }
}

/// The schema graph `S_G = (V_s, E_s, ρ_s)` (Def. 3.4).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaGraph {
    /// The discovered node types V_s.
    pub node_types: Vec<NodeType>,
    /// The discovered edge types E_s.
    pub edge_types: Vec<EdgeType>,
}

impl SchemaGraph {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the node type with exactly this label set.
    pub fn node_type_by_labels(&self, labels: &LabelSet) -> Option<usize> {
        self.node_types.iter().position(|t| &t.labels == labels)
    }

    /// Index of the edge type with exactly this label set.
    pub fn edge_type_by_labels(&self, labels: &LabelSet) -> Option<usize> {
        self.edge_types.iter().position(|t| &t.labels == labels)
    }

    /// ρ_s: resolve an edge type's endpoint pairs to node-type indices where
    /// an exact label-set match exists.
    pub fn resolve_endpoints(&self, edge_type: usize) -> Vec<(Option<usize>, Option<usize>)> {
        self.edge_types[edge_type]
            .endpoints
            .iter()
            .map(|(s, t)| (self.node_type_by_labels(s), self.node_type_by_labels(t)))
            .collect()
    }

    /// Total instances across node types.
    pub fn node_instances(&self) -> u64 {
        self.node_types.iter().map(|t| t.instance_count).sum()
    }

    /// Total instances across edge types.
    pub fn edge_instances(&self) -> u64 {
        self.edge_types.iter().map(|t| t.instance_count).sum()
    }

    /// All labels mentioned by any node type.
    pub fn node_label_universe(&self) -> BTreeSet<&str> {
        self.node_types
            .iter()
            .flat_map(|t| t.labels.iter().map(String::as_str))
            .collect()
    }

    /// All property keys mentioned by any node type.
    pub fn node_key_universe(&self) -> BTreeSet<&str> {
        self.node_types
            .iter()
            .flat_map(|t| t.props.keys().map(String::as_str))
            .collect()
    }

    /// Sort types into the canonical order — by label set, then property-key
    /// set, then aggregates — so two schemas with equal content serialize to
    /// byte-identical text no matter what order their types were produced
    /// in. [`crate::state::SchemaState::finalize`] always applies this;
    /// members keep their per-type order (they are not serialized).
    pub fn sort_canonical(&mut self) {
        self.node_types.sort_by(|a, b| {
            a.labels
                .cmp(&b.labels)
                .then_with(|| a.props.keys().cmp(b.props.keys()))
                .then_with(|| a.instance_count.cmp(&b.instance_count))
        });
        self.edge_types.sort_by(|a, b| {
            a.labels
                .cmp(&b.labels)
                .then_with(|| a.props.keys().cmp(b.props.keys()))
                .then_with(|| a.endpoints.cmp(&b.endpoints))
                .then_with(|| a.instance_count.cmp(&b.instance_count))
        });
    }
}

/// Convenience constructor for a [`LabelSet`].
pub fn label_set<S: AsRef<str>>(labels: &[S]) -> LabelSet {
    labels.iter().map(|s| s.as_ref().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_type(labels: &[&str], props: &[(&str, u64)], count: u64) -> NodeType {
        NodeType {
            labels: label_set(labels),
            props: props
                .iter()
                .map(|(k, occ)| {
                    (
                        k.to_string(),
                        PropertySpec {
                            occurrences: *occ,
                            kind: None,
                        },
                    )
                })
                .collect(),
            instance_count: count,
            members: vec![],
        }
    }

    #[test]
    fn mandatory_iff_present_everywhere() {
        let spec = PropertySpec {
            occurrences: 10,
            kind: None,
        };
        assert!(spec.is_mandatory(10));
        assert!(!spec.is_mandatory(11));
        assert!(!spec.is_mandatory(0));
    }

    #[test]
    fn cardinality_classes_match_paper() {
        assert_eq!(
            Cardinality {
                max_out: 1,
                max_in: 1
            }
            .class()
            .notation(),
            "0:1"
        );
        assert_eq!(
            Cardinality {
                max_out: 5,
                max_in: 1
            }
            .class()
            .notation(),
            "N:1"
        );
        assert_eq!(
            Cardinality {
                max_out: 1,
                max_in: 7
            }
            .class()
            .notation(),
            "0:N"
        );
        assert_eq!(
            Cardinality {
                max_out: 3,
                max_in: 3
            }
            .class()
            .notation(),
            "M:N"
        );
    }

    #[test]
    fn absorb_node_type_is_monotone() {
        // Lemma 1: K_i ⊆ K_M and L_i ⊆ L_M.
        let mut a = node_type(&["Person"], &[("name", 5), ("age", 3)], 5);
        let b = node_type(&["Human"], &[("name", 2), ("email", 2)], 2);
        let a_labels = a.labels.clone();
        let b_labels = b.labels.clone();
        let a_keys: Vec<String> = a.props.keys().cloned().collect();
        let b_keys: Vec<String> = b.props.keys().cloned().collect();
        a.absorb(b);
        for l in a_labels.iter().chain(b_labels.iter()) {
            assert!(a.labels.contains(l), "label {l} lost");
        }
        for k in a_keys.iter().chain(b_keys.iter()) {
            assert!(a.props.contains_key(k), "key {k} lost");
        }
        assert_eq!(a.instance_count, 7);
        assert_eq!(a.props["name"].occurrences, 7);
        assert_eq!(a.props["age"].occurrences, 3);
    }

    #[test]
    fn absorb_joins_kinds() {
        let mut a = node_type(&["T"], &[], 1);
        a.props.insert(
            "x".into(),
            PropertySpec {
                occurrences: 1,
                kind: Some(ValueKind::Integer),
            },
        );
        let mut b = node_type(&["T"], &[], 1);
        b.props.insert(
            "x".into(),
            PropertySpec {
                occurrences: 1,
                kind: Some(ValueKind::Float),
            },
        );
        a.absorb(b);
        assert_eq!(a.props["x"].kind, Some(ValueKind::Float));
    }

    #[test]
    fn absorb_edge_type_unions_endpoints() {
        // Lemma 2: R_1, R_2 ⊆ R_M.
        let mut a = EdgeType {
            labels: label_set(&["LOCATED_IN"]),
            props: BTreeMap::new(),
            endpoints: [(label_set(&["Org"]), label_set(&["Place"]))].into(),
            instance_count: 3,
            members: vec![0, 1, 2],
            cardinality: Some(Cardinality {
                max_out: 1,
                max_in: 2,
            }),
        };
        let b = EdgeType {
            labels: label_set(&["LOCATED_IN"]),
            props: BTreeMap::new(),
            endpoints: [(label_set(&["Person"]), label_set(&["Place"]))].into(),
            instance_count: 1,
            members: vec![7],
            cardinality: Some(Cardinality {
                max_out: 4,
                max_in: 1,
            }),
        };
        a.absorb(b);
        assert_eq!(a.endpoints.len(), 2);
        assert_eq!(a.instance_count, 4);
        assert_eq!(a.members, vec![0, 1, 2, 7]);
        assert_eq!(
            a.cardinality,
            Some(Cardinality {
                max_out: 4,
                max_in: 2
            })
        );
    }

    #[test]
    fn schema_lookup_by_labels() {
        let mut s = SchemaGraph::new();
        s.node_types.push(node_type(&["Person"], &[], 1));
        s.node_types.push(node_type(&["Post"], &[], 1));
        assert_eq!(s.node_type_by_labels(&label_set(&["Post"])), Some(1));
        assert_eq!(s.node_type_by_labels(&label_set(&["Nope"])), None);
    }

    #[test]
    fn abstract_detection() {
        let t = node_type(&[], &[("x", 1)], 1);
        assert!(t.is_abstract());
        let t = node_type(&["L"], &[], 1);
        assert!(!t.is_abstract());
    }

    #[test]
    fn resolve_endpoints_maps_indices() {
        let mut s = SchemaGraph::new();
        s.node_types.push(node_type(&["Person"], &[], 1));
        s.node_types.push(node_type(&["Org"], &[], 1));
        s.edge_types.push(EdgeType {
            labels: label_set(&["WORKS_AT"]),
            props: BTreeMap::new(),
            endpoints: [
                (label_set(&["Person"]), label_set(&["Org"])),
                (label_set(&["Ghost"]), label_set(&["Org"])),
            ]
            .into(),
            instance_count: 1,
            members: vec![],
            cardinality: None,
        });
        let resolved = s.resolve_endpoints(0);
        assert!(resolved.contains(&(Some(0), Some(1))));
        assert!(resolved.contains(&(None, Some(1))));
    }
}
