//! Versioned, self-describing snapshot persistence for the discovery
//! engine's resumable state.
//!
//! `pg-hive watch` keeps three pieces of long-lived state in memory: the
//! canonical [`SchemaState`], the id → label-set [`LabelSetRegistry`] that
//! resolves appended edges against nodes ingested long ago, and the
//! per-file byte offsets/fingerprints of the watched input. A process
//! restart used to lose all three and force a full re-ingest. This module
//! defines the on-disk **snapshot format** that makes the whole context
//! durable, and the typed [`ResumeContext`] that saves/loads it:
//!
//! ```text
//! pg-hive-snapshot 1            ← magic + format version
//! checksum 9f3c...e1            ← FNV-1a 64 over everything below
//! [config]                      ← discovery settings the state depends on
//! method elsh
//! theta 3feccccccccccccd        ← f64 bits, bit-exact
//! seed 42
//! chunk-size 100000
//! [state]                       ← SchemaState pools (see state lines)
//! ...
//! [registry]                    ← id → label-set registry
//! ...
//! [watch]                       ← optional: watch progress (pass, input)
//! ...
//! [files]                       ← optional: per-file offsets/fingerprints
//! ...
//! ```
//!
//! Design rules (full spec in `docs/PERSISTENCE.md` at the repository
//! root):
//!
//! - **Atomic**: [`Snapshot::write_atomic`] writes a sibling temp file,
//!   syncs, then renames — a crash mid-checkpoint leaves the previous
//!   snapshot intact, never a half-written one.
//! - **Self-checking**: the header carries a format version and a content
//!   checksum. Corrupt, truncated, or future-version files are rejected
//!   with named [`SnapshotError`]s (every message starts with
//!   `snapshot:`) — never a panic, never a silent re-ingest.
//! - **Config-guarded**: the `[config]` section records the settings the
//!   serialized state is only valid under (method, θ, seed, chunk size).
//!   A resumed run with different settings is refused
//!   ([`SnapshotConfig::ensure_matches`]) instead of silently producing a
//!   schema no uninterrupted run could have produced.
//! - **Canonical**: serializing equal state produces byte-identical files
//!   (sections iterate `BTreeMap`s; the registry sorts its hash maps), and
//!   a save → load round trip finalizes **byte-identically** to the state
//!   that was saved — the property `tests/tests/snapshot_resume.rs`
//!   proptests end to end.
//!
//! Member element ids are deliberately **not** serialized: they are
//! chunk-local and die with their chunk (every streaming path clears them
//! before absorbing — see [`SchemaState::clear_members`]).

use crate::config::{ClusterMethod, PipelineConfig};
use crate::schema::{Cardinality, EdgeType, LabelSet, NodeType, PropertySpec};
use crate::sigcache::SignatureCache;
use crate::state::SchemaState;
use pg_hive_graph::snapshot::{bytes_from_hex, bytes_to_hex, escape_field, unescape_field};
use pg_hive_graph::{LabelSetRegistry, Record, StreamWarnings, Value, ValueKind};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// First line token identifying a pg-hive snapshot file.
pub const MAGIC: &str = "pg-hive-snapshot";

/// The newest snapshot format version this build can read and the version
/// it writes. Older readers refuse newer files with a named error instead
/// of misparsing them.
pub const FORMAT_VERSION: u32 = 1;

/// Section holding the discovery configuration ([`SnapshotConfig`]).
pub const SECTION_CONFIG: &str = "config";
/// Section holding the [`SchemaState`] pools.
pub const SECTION_STATE: &str = "state";
/// Section holding the [`LabelSetRegistry`].
pub const SECTION_REGISTRY: &str = "registry";
/// Section holding watch progress ([`WatchCheckpoint`] scalars).
pub const SECTION_WATCH: &str = "watch";
/// Section holding per-file offsets/fingerprints ([`FileCheckpoint`]s).
pub const SECTION_FILES: &str = "files";
/// Section holding carried cross-shard edges whose endpoints were not
/// declared by any input of the saving run — resolvable after a later
/// `merge-state` unions the registries.
pub const SECTION_PENDING: &str = "pending";
/// Section holding the [`SignatureCache`]'s memoized chunk-fingerprint →
/// distinct-clustering entries. **Optional**: readers that predate it
/// ignore unknown sections, and a snapshot without it simply resumes with
/// a cold cache — which is why adding it did not bump [`FORMAT_VERSION`]
/// (the cache is a performance artifact, never required for correctness).
pub const SECTION_SIGCACHE: &str = "sigcache";

/// Everything that can go wrong while saving, loading, or resuming from a
/// snapshot. Every rendering starts with `snapshot:` so operators (and the
/// e2e suite) can grep for persistence failures unambiguously.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem-level failure (open, read, write, rename).
    Io {
        /// The path being accessed.
        path: String,
        /// The underlying error description.
        detail: String,
    },
    /// The file does not start with the `pg-hive-snapshot` magic line.
    NotASnapshot,
    /// The file was written by a newer pg-hive with a format this build
    /// does not know how to read.
    FutureVersion {
        /// Version found in the file header.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// The checksum does not match, or the header is truncated — the file
    /// was corrupted or cut short.
    Corrupt {
        /// What exactly failed to verify.
        detail: String,
    },
    /// The container verified but a section's content does not parse.
    Malformed {
        /// What exactly failed to parse.
        detail: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The section name.
        name: &'static str,
    },
    /// The snapshot was written under discovery settings that differ from
    /// the resuming run's — absorbing into the saved state would produce a
    /// schema no uninterrupted run could have produced, so it is refused.
    Incompatible {
        /// The mismatching setting.
        field: &'static str,
        /// Value recorded in the snapshot.
        saved: String,
        /// Value the resuming run requested.
        requested: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, detail } => {
                write!(f, "snapshot: cannot access {path}: {detail}")
            }
            SnapshotError::NotASnapshot => {
                write!(f, "snapshot: not a pg-hive snapshot file (bad magic line)")
            }
            SnapshotError::FutureVersion { found, supported } => write!(
                f,
                "snapshot: file uses format version {found}, but this build reads up to \
                 version {supported} — upgrade pg-hive or recreate the snapshot"
            ),
            SnapshotError::Corrupt { detail } => write!(f, "snapshot: {detail}"),
            SnapshotError::Malformed { detail } => {
                write!(f, "snapshot: malformed content: {detail}")
            }
            SnapshotError::MissingSection { name } => {
                write!(f, "snapshot: missing required [{name}] section")
            }
            SnapshotError::Incompatible {
                field,
                saved,
                requested,
            } => write!(
                f,
                "snapshot: incompatible configuration: the snapshot was written with \
                 {field}={saved}, this run uses {field}={requested} — rerun with matching \
                 settings or start fresh"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn malformed(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed {
        detail: detail.into(),
    }
}

/// FNV-1a 64 over the payload bytes — cheap, dependency-free, and more
/// than enough to flag truncation and bit rot (this is an integrity check,
/// not an authenticity one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The generic snapshot container: an ordered list of named sections of
/// payload lines, framed by the magic/version/checksum header.
///
/// ```
/// use pg_hive_core::snapshot::Snapshot;
///
/// let mut snap = Snapshot::new();
/// snap.push_section("config", vec!["seed 42".into()]);
/// let text = snap.to_text();
/// assert!(text.starts_with("pg-hive-snapshot 1\nchecksum "));
/// let back = Snapshot::parse(&text).unwrap();
/// assert_eq!(back.section("config").unwrap(), ["seed 42".to_string()]);
///
/// // A flipped byte is caught by the checksum, not misparsed.
/// let corrupt = text.replace("seed 42", "seed 43");
/// assert!(Snapshot::parse(&corrupt).unwrap_err().to_string().contains("checksum"));
/// ```
#[derive(Debug, Default)]
pub struct Snapshot {
    sections: Vec<(String, Vec<String>)>,
}

impl Snapshot {
    /// Empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a named section. Lines must not start with `[` (section
    /// delimiters) — every serializer in this module escapes its fields,
    /// which makes that impossible by construction.
    pub fn push_section(&mut self, name: &str, lines: Vec<String>) {
        debug_assert!(
            lines.iter().all(|l| !l.starts_with('[')),
            "section line collides with a section header"
        );
        self.sections.push((name.to_string(), lines));
    }

    /// Lines of the named section, if present.
    pub fn section(&self, name: &str) -> Option<&[String]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, l)| l.as_slice())
    }

    /// Render the full file text: header, checksum, sections.
    pub fn to_text(&self) -> String {
        let mut payload = String::new();
        for (name, lines) in &self.sections {
            payload.push('[');
            payload.push_str(name);
            payload.push_str("]\n");
            for line in lines {
                payload.push_str(line);
                payload.push('\n');
            }
        }
        format!(
            "{MAGIC} {FORMAT_VERSION}\nchecksum {:016x}\n{payload}",
            fnv1a64(payload.as_bytes())
        )
    }

    /// Parse and verify a snapshot file's text: magic, version (future
    /// versions refused), checksum (corruption/truncation refused), then
    /// the section structure.
    pub fn parse(text: &str) -> Result<Snapshot, SnapshotError> {
        let (first, rest) = split_line(text).ok_or(SnapshotError::NotASnapshot)?;
        let mut header = first.split(' ');
        if header.next() != Some(MAGIC) {
            return Err(SnapshotError::NotASnapshot);
        }
        let version: u32 = header
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed("unreadable format version in the header"))?;
        if version > FORMAT_VERSION {
            return Err(SnapshotError::FutureVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let (second, payload) = split_line(rest).ok_or_else(|| SnapshotError::Corrupt {
            detail: "file ends before the checksum line (truncated)".into(),
        })?;
        let expected = second
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| SnapshotError::Corrupt {
                detail: "missing or unreadable checksum line".into(),
            })?;
        if fnv1a64(payload.as_bytes()) != expected {
            return Err(SnapshotError::Corrupt {
                detail: "checksum mismatch — the file is corrupt or was truncated".into(),
            });
        }
        let mut snap = Snapshot::new();
        for line in payload.lines() {
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                snap.sections.push((name.to_string(), Vec::new()));
            } else {
                match snap.sections.last_mut() {
                    Some((_, lines)) => lines.push(line.to_string()),
                    None => return Err(malformed("content before the first section header")),
                }
            }
        }
        Ok(snap)
    }

    /// Write the snapshot **atomically**: render to a sibling `.tmp` file,
    /// sync it, then rename over `path`. A reader never observes a
    /// half-written snapshot; a crash leaves the previous one intact.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let io_err = |detail: std::io::Error| SnapshotError::Io {
            path: path.display().to_string(),
            detail: detail.to_string(),
        };
        let file_name = path
            .file_name()
            .ok_or_else(|| SnapshotError::Io {
                path: path.display().to_string(),
                detail: "path has no file name".into(),
            })?
            .to_string_lossy()
            .into_owned();
        let tmp = path.with_file_name(format!("{file_name}.tmp"));
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(self.to_text().as_bytes()).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Read and [`Self::parse`] a snapshot file.
    pub fn read(path: &Path) -> Result<Snapshot, SnapshotError> {
        let text = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Load every snapshot file and fold them into one [`ResumeContext`]
    /// with [`ResumeContext::merge`] — the engine under `pg-hive
    /// merge-state`. The first file is the base; each further file must
    /// carry an identical configuration or the fold stops with
    /// [`SnapshotError::Incompatible`]. Returns the merged context plus the
    /// total node-id collision count across all merges (carried pending
    /// edges are concatenated, **not** yet resolved — resolve them against
    /// the merged registry with the discovery pipeline before finalizing).
    pub fn merge_files<P: AsRef<Path>>(paths: &[P]) -> Result<(ResumeContext, u64), SnapshotError> {
        let mut iter = paths.iter();
        let first = iter
            .next()
            .ok_or_else(|| malformed("merge needs at least one snapshot file"))?;
        let mut merged = ResumeContext::load(first.as_ref())?;
        // A merged state is no longer any single watch's checkpoint, even
        // when only one input was given.
        merged.watch = None;
        let mut collisions = 0u64;
        for path in iter {
            collisions += merged.merge(ResumeContext::load(path.as_ref())?)?;
        }
        Ok((merged, collisions))
    }
}

fn split_line(text: &str) -> Option<(&str, &str)> {
    if text.is_empty() {
        return None;
    }
    match text.find('\n') {
        Some(i) => Some((&text[..i], &text[i + 1..])),
        None => Some((text, "")),
    }
}

// ---------------------------------------------------------------------------
// [config] — the settings the serialized state is only valid under.
// ---------------------------------------------------------------------------

/// The discovery settings a snapshot's state depends on. Everything here
/// changes the *content* of an absorbed `SchemaState` — the LSH family and
/// seed change clusterings, θ changes finalization, the chunk size changes
/// where cross-chunk stubs appear — so a resumed run must match exactly or
/// be refused.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotConfig {
    /// LSH family used for clustering.
    pub method: ClusterMethod,
    /// Jaccard merge threshold θ (compared bit-exactly).
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Streaming chunk size in elements.
    pub chunk_size: usize,
}

impl SnapshotConfig {
    /// Capture the resumable settings of a pipeline configuration plus the
    /// streaming chunk size.
    pub fn new(config: &PipelineConfig, chunk_size: usize) -> Self {
        Self {
            method: config.method,
            theta: config.theta,
            seed: config.seed,
            chunk_size,
        }
    }

    fn section_lines(&self) -> Vec<String> {
        vec![
            format!("method {}", method_token(self.method)),
            format!("theta {:016x}", self.theta.to_bits()),
            format!("seed {}", self.seed),
            format!("chunk-size {}", self.chunk_size),
        ]
    }

    fn from_section(lines: &[String]) -> Result<Self, SnapshotError> {
        let mut method = None;
        let mut theta = None;
        let mut seed = None;
        let mut chunk_size = None;
        for line in lines {
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| malformed(format!("config line '{line}' has no value")))?;
            match key {
                "method" => method = Some(method_from_token(value)?),
                "theta" => {
                    theta = Some(f64::from_bits(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| malformed("theta is not a hex bit pattern"))?,
                    ))
                }
                "seed" => seed = Some(value.parse().map_err(|_| malformed("seed is not a u64"))?),
                "chunk-size" => {
                    chunk_size = Some(
                        value
                            .parse()
                            .map_err(|_| malformed("chunk-size is not an integer"))?,
                    )
                }
                other => return Err(malformed(format!("unknown config key '{other}'"))),
            }
        }
        Ok(Self {
            method: method.ok_or_else(|| malformed("config is missing 'method'"))?,
            theta: theta.ok_or_else(|| malformed("config is missing 'theta'"))?,
            seed: seed.ok_or_else(|| malformed("config is missing 'seed'"))?,
            chunk_size: chunk_size.ok_or_else(|| malformed("config is missing 'chunk-size'"))?,
        })
    }

    /// Refuse to resume under different settings: compare this (saved)
    /// configuration against what the resuming run `requested`, naming the
    /// first mismatching field in the error.
    pub fn ensure_matches(&self, requested: &SnapshotConfig) -> Result<(), SnapshotError> {
        let err = |field, saved: String, req: String| {
            Err(SnapshotError::Incompatible {
                field,
                saved,
                requested: req,
            })
        };
        if self.method != requested.method {
            return err(
                "method",
                method_token(self.method).into(),
                method_token(requested.method).into(),
            );
        }
        if self.theta.to_bits() != requested.theta.to_bits() {
            return err("theta", self.theta.to_string(), requested.theta.to_string());
        }
        if self.seed != requested.seed {
            return err("seed", self.seed.to_string(), requested.seed.to_string());
        }
        if self.chunk_size != requested.chunk_size {
            return err(
                "chunk-size",
                self.chunk_size.to_string(),
                requested.chunk_size.to_string(),
            );
        }
        Ok(())
    }
}

fn method_token(m: ClusterMethod) -> &'static str {
    match m {
        ClusterMethod::Elsh => "elsh",
        ClusterMethod::MinHash => "minhash",
    }
}

fn method_from_token(s: &str) -> Result<ClusterMethod, SnapshotError> {
    match s {
        "elsh" => Ok(ClusterMethod::Elsh),
        "minhash" => Ok(ClusterMethod::MinHash),
        other => Err(malformed(format!("unknown cluster method '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// [state] — the SchemaState pools.
// ---------------------------------------------------------------------------

fn kind_token(k: Option<ValueKind>) -> &'static str {
    match k {
        None => "-",
        Some(ValueKind::Integer) => "int",
        Some(ValueKind::Float) => "float",
        Some(ValueKind::Boolean) => "bool",
        Some(ValueKind::Date) => "date",
        Some(ValueKind::Timestamp) => "timestamp",
        Some(ValueKind::String) => "string",
    }
}

fn kind_from_token(s: &str) -> Result<Option<ValueKind>, SnapshotError> {
    Ok(match s {
        "-" => None,
        "int" => Some(ValueKind::Integer),
        "float" => Some(ValueKind::Float),
        "bool" => Some(ValueKind::Boolean),
        "date" => Some(ValueKind::Date),
        "timestamp" => Some(ValueKind::Timestamp),
        "string" => Some(ValueKind::String),
        other => return Err(malformed(format!("unknown value kind '{other}'"))),
    })
}

fn labels_token(labels: &LabelSet) -> String {
    if labels.is_empty() {
        "-".to_string()
    } else {
        labels
            .iter()
            .map(|l| escape_field(l))
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn labels_from_token(s: &str) -> Result<LabelSet, SnapshotError> {
    if s == "-" {
        return Ok(LabelSet::new());
    }
    s.split(',')
        .map(|l| unescape_field(l).map_err(malformed))
        .collect()
}

fn props_tokens(props: &BTreeMap<String, PropertySpec>) -> impl Iterator<Item = String> + '_ {
    props.iter().map(|(k, spec)| {
        format!(
            "{}:{}:{}",
            escape_field(k),
            spec.occurrences,
            kind_token(spec.kind)
        )
    })
}

fn prop_from_token(tok: &str) -> Result<(String, PropertySpec), SnapshotError> {
    let mut parts = tok.split(':');
    let key = unescape_field(parts.next().unwrap_or_default()).map_err(malformed)?;
    let occurrences = parts
        .next()
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| malformed(format!("property token '{tok}' has no occurrence count")))?;
    let kind = kind_from_token(
        parts
            .next()
            .ok_or_else(|| malformed(format!("property token '{tok}' has no kind")))?,
    )?;
    if parts.next().is_some() {
        return Err(malformed(format!(
            "property token '{tok}' has extra fields"
        )));
    }
    Ok((key, PropertySpec { occurrences, kind }))
}

fn endpoint_side_token(side: &LabelSet) -> String {
    side.iter()
        .map(|l| escape_field(l))
        .collect::<Vec<_>>()
        .join("+")
}

fn endpoint_side_from_token(s: &str) -> Result<LabelSet, SnapshotError> {
    if s.is_empty() {
        return Ok(LabelSet::new());
    }
    s.split('+')
        .map(|l| unescape_field(l).map_err(malformed))
        .collect()
}

/// Serialize a [`SchemaState`] into `[state]` section lines: the θ bit
/// pattern, then one `node` line per pooled node type (labeled first, then
/// abstract) and one `edge` line per pooled edge type — all in `BTreeMap`
/// (canonical) order, so equal states serialize byte-identically. Member
/// ids are not serialized (they are chunk-local).
pub fn state_to_lines(state: &SchemaState) -> Vec<String> {
    let mut lines = vec![format!("theta {:016x}", state.theta().to_bits())];
    for t in state
        .labeled_nodes
        .values()
        .chain(state.abstract_nodes.values())
    {
        let mut line = format!("node {} {}", labels_token(&t.labels), t.instance_count);
        for tok in props_tokens(&t.props) {
            line.push(' ');
            line.push_str(&tok);
        }
        lines.push(line);
    }
    for t in state
        .labeled_edges
        .values()
        .chain(state.abstract_edges.values())
    {
        let card = match t.cardinality {
            None => "-".to_string(),
            Some(c) => format!("{}:{}", c.max_out, c.max_in),
        };
        let endpoints = if t.endpoints.is_empty() {
            "-".to_string()
        } else {
            t.endpoints
                .iter()
                .map(|(s, d)| format!("{}>{}", endpoint_side_token(s), endpoint_side_token(d)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut line = format!(
            "edge {} {} {card} {endpoints}",
            labels_token(&t.labels),
            t.instance_count
        );
        for tok in props_tokens(&t.props) {
            line.push(' ');
            line.push_str(&tok);
        }
        lines.push(line);
    }
    lines
}

/// Rebuild a [`SchemaState`] from [`state_to_lines`] output. Types are
/// re-absorbed through the state's own pooling rules, so the reconstructed
/// pools — and therefore [`SchemaState::finalize`]'s output — are identical
/// to the saved state's, byte for byte.
pub fn state_from_lines(lines: &[String]) -> Result<SchemaState, SnapshotError> {
    let theta_line = lines
        .iter()
        .find_map(|l| l.strip_prefix("theta "))
        .ok_or_else(|| malformed("state is missing its theta line"))?;
    let theta = f64::from_bits(
        u64::from_str_radix(theta_line, 16)
            .map_err(|_| malformed("state theta is not a hex bit pattern"))?,
    );
    let mut state = SchemaState::new(theta);
    for line in lines {
        let mut tokens = line.split(' ');
        match tokens.next() {
            Some("theta") => {}
            Some("node") => {
                let labels = labels_from_token(
                    tokens
                        .next()
                        .ok_or_else(|| malformed("node line has no labels"))?,
                )?;
                let instance_count = tokens
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| malformed("node line has no instance count"))?;
                let props = tokens.map(prop_from_token).collect::<Result<_, _>>()?;
                state.absorb_node_candidates(vec![NodeType {
                    labels,
                    props,
                    instance_count,
                    members: Vec::new(),
                }]);
            }
            Some("edge") => {
                let labels = labels_from_token(
                    tokens
                        .next()
                        .ok_or_else(|| malformed("edge line has no labels"))?,
                )?;
                let instance_count = tokens
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| malformed("edge line has no instance count"))?;
                let card_tok = tokens
                    .next()
                    .ok_or_else(|| malformed("edge line has no cardinality"))?;
                let cardinality = if card_tok == "-" {
                    None
                } else {
                    let (o, i) = card_tok
                        .split_once(':')
                        .ok_or_else(|| malformed("edge cardinality is not out:in"))?;
                    Some(Cardinality {
                        max_out: o
                            .parse()
                            .map_err(|_| malformed("edge max_out is not a u64"))?,
                        max_in: i
                            .parse()
                            .map_err(|_| malformed("edge max_in is not a u64"))?,
                    })
                };
                let ep_tok = tokens
                    .next()
                    .ok_or_else(|| malformed("edge line has no endpoints"))?;
                let endpoints = if ep_tok == "-" {
                    Default::default()
                } else {
                    ep_tok
                        .split(',')
                        .map(|pair| {
                            let (s, d) = pair
                                .split_once('>')
                                .ok_or_else(|| malformed("edge endpoint is not src>tgt"))?;
                            Ok((endpoint_side_from_token(s)?, endpoint_side_from_token(d)?))
                        })
                        .collect::<Result<_, SnapshotError>>()?
                };
                let props = tokens.map(prop_from_token).collect::<Result<_, _>>()?;
                state.absorb_edge_candidates(vec![EdgeType {
                    labels,
                    props,
                    endpoints,
                    instance_count,
                    members: Vec::new(),
                    cardinality,
                }]);
            }
            Some("") | None => {}
            Some(other) => return Err(malformed(format!("unknown state line kind '{other}'"))),
        }
    }
    Ok(state)
}

impl SchemaState {
    /// Save this state alone (no config guard, no registry) as a snapshot
    /// file — the minimal persistence surface. Long-running consumers that
    /// must also survive config drift and keep resolving cross-pass edges
    /// should persist a full [`ResumeContext`] instead (that is what
    /// `pg-hive watch --state-dir` and `discover --save-state` write).
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut snap = Snapshot::new();
        snap.push_section(SECTION_STATE, state_to_lines(self));
        snap.write_atomic(path)
    }

    /// Load a state saved by [`SchemaState::save`] (or the `[state]`
    /// section of any pg-hive snapshot). Corrupt, truncated, or
    /// future-version files are refused with named `snapshot:` errors.
    pub fn load(path: &Path) -> Result<SchemaState, SnapshotError> {
        let snap = Snapshot::read(path)?;
        state_from_lines(
            snap.section(SECTION_STATE)
                .ok_or(SnapshotError::MissingSection {
                    name: SECTION_STATE,
                })?,
        )
    }
}

// ---------------------------------------------------------------------------
// [watch] + [files] — watch progress and per-file read positions.
// ---------------------------------------------------------------------------

/// One watched file's durable read position: how many bytes were consumed,
/// the trailing consumed bytes (the rotation fingerprint), and, for CSV,
/// the retained header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCheckpoint {
    /// The file's path as the watcher tracked it.
    pub path: String,
    /// Bytes consumed so far.
    pub offset: u64,
    /// Last consumed bytes — the fingerprint that detects
    /// truncate-and-regrow rotations.
    pub tail: Vec<u8>,
    /// Retained first line (CSV header), if any.
    pub header: Option<Vec<u8>>,
    /// Whether the file must exist for a pass to succeed.
    pub required: bool,
}

/// Watch progress: which input was being watched, how far it got, and the
/// per-file read positions — everything `pg-hive watch` needs to resume a
/// drift-monitoring run exactly where the killed process stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchCheckpoint {
    /// The input path argument the watch run was started with.
    pub input: String,
    /// The input wire format (`pgt` / `csv` / `jsonl`).
    pub format: String,
    /// Last completed pass number.
    pub pass: u64,
    /// Ingestion warnings accumulated across all passes so far.
    pub warnings: StreamWarnings,
    /// Per-file read positions.
    pub files: Vec<FileCheckpoint>,
}

fn watch_section_lines(w: &WatchCheckpoint) -> Vec<String> {
    vec![
        format!("input {}", escape_field(&w.input)),
        format!("format {}", w.format),
        format!("pass {}", w.pass),
        format!(
            "warnings {} {} {} {} {}",
            w.warnings.cross_chunk_edges,
            w.warnings.unresolved_edges,
            w.warnings.deferred_edges,
            w.warnings.evicted_edges,
            w.warnings.duplicate_nodes
        ),
    ]
}

fn files_section_lines(files: &[FileCheckpoint]) -> Vec<String> {
    files
        .iter()
        .map(|f| {
            format!(
                "file {} {} {} {} {}",
                escape_field(&f.path),
                f.offset,
                bytes_to_hex(&f.tail),
                f.header.as_deref().map_or("-".to_string(), bytes_to_hex),
                u8::from(f.required)
            )
        })
        .collect()
}

fn watch_from_sections(
    watch_lines: &[String],
    files_lines: &[String],
) -> Result<WatchCheckpoint, SnapshotError> {
    let mut input = None;
    let mut format = None;
    let mut pass = None;
    let mut warnings = StreamWarnings::default();
    for line in watch_lines {
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| malformed(format!("watch line '{line}' has no value")))?;
        match key {
            "input" => input = Some(unescape_field(value).map_err(malformed)?),
            "format" => format = Some(value.to_string()),
            "pass" => pass = Some(value.parse().map_err(|_| malformed("pass is not a u64"))?),
            "warnings" => {
                let counts: Vec<u64> = value
                    .split(' ')
                    .map(|n| n.parse())
                    .collect::<Result<_, _>>()
                    .map_err(|_| malformed("warnings line has non-numeric counts"))?;
                let [cc, ur, de, ev, dn]: [u64; 5] = counts
                    .try_into()
                    .map_err(|_| malformed("warnings line does not have 5 counts"))?;
                warnings = StreamWarnings {
                    cross_chunk_edges: cc,
                    unresolved_edges: ur,
                    deferred_edges: de,
                    evicted_edges: ev,
                    duplicate_nodes: dn,
                };
            }
            other => return Err(malformed(format!("unknown watch key '{other}'"))),
        }
    }
    let files = files_lines
        .iter()
        .map(|line| {
            let tokens: Vec<&str> = line.split(' ').collect();
            let [kind, path, offset, tail, header, required] = tokens[..] else {
                return Err(malformed(format!("file line '{line}' has wrong arity")));
            };
            if kind != "file" {
                return Err(malformed(format!("unknown files line kind '{kind}'")));
            }
            Ok(FileCheckpoint {
                path: unescape_field(path).map_err(malformed)?,
                offset: offset
                    .parse()
                    .map_err(|_| malformed("file offset is not a u64"))?,
                tail: bytes_from_hex(tail).map_err(malformed)?,
                header: match header {
                    "-" => None,
                    h => Some(bytes_from_hex(h).map_err(malformed)?),
                },
                required: match required {
                    "0" => false,
                    "1" => true,
                    _ => return Err(malformed("file required flag is not 0/1")),
                },
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WatchCheckpoint {
        input: input.ok_or_else(|| malformed("watch section is missing 'input'"))?,
        format: format.ok_or_else(|| malformed("watch section is missing 'format'"))?,
        pass: pass.ok_or_else(|| malformed("watch section is missing 'pass'"))?,
        warnings,
        files,
    })
}

// ---------------------------------------------------------------------------
// [pending] — carried cross-shard edges awaiting endpoint resolution.
// ---------------------------------------------------------------------------

/// Serialize carried edges into `[pending]` lines:
/// `edge <src> <tgt> <labels> <key>:<value> ...`, every field escaped,
/// labels `,`-joined (`-` when unlabeled), values in their lexical form.
/// Kind inference runs on lexical forms ([`Value::parse_lexical`]), so the
/// round-trip loses nothing schema-relevant. Non-edge records are skipped
/// defensively — only edges are ever carried.
pub fn pending_section_lines(pending: &[Record]) -> Vec<String> {
    let mut lines = Vec::with_capacity(pending.len());
    for rec in pending {
        let Record::Edge {
            src,
            tgt,
            labels,
            props,
        } = rec
        else {
            continue;
        };
        let labels_tok = if labels.is_empty() {
            "-".to_string()
        } else {
            labels
                .iter()
                .map(|l| escape_field(l))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut line = format!(
            "edge {} {} {labels_tok}",
            escape_field(src),
            escape_field(tgt)
        );
        for (k, v) in props {
            line.push(' ');
            line.push_str(&escape_field(k));
            line.push(':');
            line.push_str(&escape_field(&v.lexical()));
        }
        lines.push(line);
    }
    lines
}

/// Rebuild carried edges from [`pending_section_lines`] output.
pub fn pending_from_lines(lines: &[String]) -> Result<Vec<Record>, SnapshotError> {
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        let mut tokens = line.split(' ');
        match tokens.next() {
            Some("edge") => {}
            other => {
                return Err(malformed(format!(
                    "pending line starts with '{}' instead of 'edge'",
                    other.unwrap_or_default()
                )))
            }
        }
        let mut field = |what: &str| {
            tokens
                .next()
                .ok_or_else(|| malformed(format!("pending edge has no {what}")))
        };
        let src = unescape_field(field("source id")?).map_err(malformed)?;
        let tgt = unescape_field(field("target id")?).map_err(malformed)?;
        let labels_tok = field("labels")?;
        let labels = if labels_tok == "-" {
            Vec::new()
        } else {
            labels_tok
                .split(',')
                .map(|l| unescape_field(l).map_err(malformed))
                .collect::<Result<_, _>>()?
        };
        let props = tokens
            .map(|tok| {
                let (k, v) = tok.split_once(':').ok_or_else(|| {
                    malformed(format!("pending property '{tok}' is not key:value"))
                })?;
                Ok((
                    unescape_field(k).map_err(malformed)?,
                    Value::parse_lexical(&unescape_field(v).map_err(malformed)?),
                ))
            })
            .collect::<Result<_, SnapshotError>>()?;
        out.push(Record::Edge {
            src,
            tgt,
            labels,
            props,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The full resumable context.
// ---------------------------------------------------------------------------

/// The full resumable engine context a snapshot file carries: the
/// config guard, the canonical [`SchemaState`], the id → label-set
/// [`LabelSetRegistry`], and (for watch checkpoints) the per-file read
/// positions. `discover --save-state` writes one with `watch: None`;
/// `watch --state-dir` writes one with the watch section filled in.
#[derive(Debug)]
pub struct ResumeContext {
    /// Settings the state is only valid under.
    pub config: SnapshotConfig,
    /// The resident schema state.
    pub state: SchemaState,
    /// The id → label-set registry (cross-pass edge resolution).
    pub registry: LabelSetRegistry,
    /// Watch progress; `None` for plain `discover` save-states.
    pub watch: Option<WatchCheckpoint>,
    /// Carried edges whose endpoints no input of the saving run declared —
    /// kept verbatim so a later [`ResumeContext::merge`] can resolve them
    /// against the unioned registry. Empty for most snapshots.
    pub pending: Vec<Record>,
}

/// Render a snapshot from **borrowed** context parts — the serializer
/// under [`ResumeContext::to_snapshot`], exposed so a hot checkpoint loop
/// (`watch --state-dir` checkpoints after *every* pass) can serialize
/// without first deep-cloning the state and registry into an owned
/// context.
pub fn context_snapshot(
    config: &SnapshotConfig,
    state: &SchemaState,
    registry: &LabelSetRegistry,
    watch: Option<&WatchCheckpoint>,
    pending: &[Record],
) -> Snapshot {
    let mut snap = Snapshot::new();
    snap.push_section(SECTION_CONFIG, config.section_lines());
    snap.push_section(SECTION_STATE, state_to_lines(state));
    snap.push_section(SECTION_REGISTRY, registry.snapshot_lines());
    if let Some(w) = watch {
        snap.push_section(SECTION_WATCH, watch_section_lines(w));
        snap.push_section(SECTION_FILES, files_section_lines(&w.files));
    }
    if !pending.is_empty() {
        snap.push_section(SECTION_PENDING, pending_section_lines(pending));
    }
    snap
}

/// [`context_snapshot`] plus an optional `[sigcache]` section carrying the
/// run's [`SignatureCache`] so a resumed process starts warm. The section
/// is omitted when the cache is absent or empty (the common one-shot case
/// stays byte-identical to pre-cache snapshots).
pub fn context_snapshot_cached(
    config: &SnapshotConfig,
    state: &SchemaState,
    registry: &LabelSetRegistry,
    watch: Option<&WatchCheckpoint>,
    pending: &[Record],
    cache: Option<&SignatureCache>,
) -> Snapshot {
    let mut snap = context_snapshot(config, state, registry, watch, pending);
    if let Some(cache) = cache {
        let lines = cache.snapshot_lines();
        if !lines.is_empty() {
            snap.push_section(SECTION_SIGCACHE, lines);
        }
    }
    snap
}

/// Rebuild the [`SignatureCache`] persisted in a snapshot's `[sigcache]`
/// section, bounded to `cap` entries. A snapshot without the section (any
/// snapshot written before the cache existed, or with an empty cache)
/// yields a cold cache — never an error.
pub fn sigcache_from_snapshot(
    snap: &Snapshot,
    cap: usize,
) -> Result<SignatureCache, SnapshotError> {
    match snap.section(SECTION_SIGCACHE) {
        None => Ok(SignatureCache::new(cap)),
        Some(lines) => SignatureCache::from_snapshot_lines(lines, cap).map_err(malformed),
    }
}

impl ResumeContext {
    /// Render into the snapshot container.
    pub fn to_snapshot(&self) -> Snapshot {
        context_snapshot(
            &self.config,
            &self.state,
            &self.registry,
            self.watch.as_ref(),
            &self.pending,
        )
    }

    /// Rebuild from a parsed snapshot. `[config]`, `[state]` and
    /// `[registry]` are required; `[watch]`/`[files]` are optional as a
    /// pair.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let need = |name: &'static str| {
            snap.section(name)
                .ok_or(SnapshotError::MissingSection { name })
        };
        let config = SnapshotConfig::from_section(need(SECTION_CONFIG)?)?;
        let state = state_from_lines(need(SECTION_STATE)?)?;
        let registry = LabelSetRegistry::from_snapshot_lines(
            need(SECTION_REGISTRY)?.iter().map(String::as_str),
        )
        .map_err(malformed)?;
        let watch = match snap.section(SECTION_WATCH) {
            None => None,
            Some(watch_lines) => Some(watch_from_sections(watch_lines, need(SECTION_FILES)?)?),
        };
        let pending = match snap.section(SECTION_PENDING) {
            None => Vec::new(),
            Some(lines) => pending_from_lines(lines)?,
        };
        Ok(Self {
            config,
            state,
            registry,
            watch,
            pending,
        })
    }

    /// Merge another context into this one — the snapshot-to-snapshot
    /// aggregation under `pg-hive merge-state`. States merge with the
    /// associative+commutative [`SchemaState::merge`], registries union
    /// (the other side's binding wins on node-id collisions), and carried
    /// pending edges concatenate for later resolution against the unioned
    /// registry. Any watch checkpoint is dropped: per-file read positions
    /// are meaningless for a state aggregated across machines.
    ///
    /// Returns the number of node-id collisions (ids bound by both
    /// registries — expected to be 0 when inputs were split cleanly).
    ///
    /// # Errors
    /// [`SnapshotError::Incompatible`] when the other context was produced
    /// under a different method, θ, seed, or chunk size — merging states
    /// from different configurations would produce a schema no single run
    /// could have produced.
    pub fn merge(&mut self, other: ResumeContext) -> Result<u64, SnapshotError> {
        self.config.ensure_matches(&other.config)?;
        self.state.merge(other.state);
        let collisions = self.registry.merge(&other.registry);
        self.pending.extend(other.pending);
        self.watch = None;
        Ok(collisions)
    }

    /// Atomically write the context as a snapshot file.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        self.to_snapshot().write_atomic(path)
    }

    /// Read, verify, and rebuild a context from a snapshot file.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Self::from_snapshot(&Snapshot::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::label_set;
    use crate::serialize::pg_schema_strict;
    use crate::{Discoverer, PipelineConfig};
    use pg_hive_graph::{GraphBuilder, Value};

    fn sample_graph() -> pg_hive_graph::PropertyGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("Ann, \"quoted\" % x")),
                ("bday", Value::from("1999-12-19")),
            ],
        );
        let anon = b.add_node(
            &[],
            &[
                ("name", Value::from("Zed")),
                ("bday", Value::from("2001-01-01")),
            ],
        );
        let o = b.add_node(&["Org"], &[("url", Value::from("x.com"))]);
        b.add_edge(a, o, &["WORKS AT"], &[("from", Value::Int(2001))]);
        b.add_edge(anon, o, &["WORKS AT"], &[]);
        b.finish()
    }

    fn sample_state() -> (Discoverer, SchemaState) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let mut s = d.discover_chunk_state(&sample_graph());
        s.clear_members();
        (d, s)
    }

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "pg-hive-snapshot-unit-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn state_lines_round_trip_to_byte_identical_finalize() {
        let (_, state) = sample_state();
        let lines = state_to_lines(&state);
        let back = state_from_lines(&lines).unwrap();
        assert_eq!(back.theta().to_bits(), state.theta().to_bits());
        assert_eq!(
            pg_schema_strict(&back.finalize(), "G"),
            pg_schema_strict(&state.finalize(), "G"),
            "reloaded state must finalize byte-identically"
        );
        // Serialization is a fixed point: re-serializing reproduces the
        // exact lines.
        assert_eq!(state_to_lines(&back), lines);
    }

    #[test]
    fn state_save_load_via_file() {
        let (_, state) = sample_state();
        let path = temp("state");
        state.save(&path).unwrap();
        let back = SchemaState::load(&path).unwrap();
        assert_eq!(back.finalize(), state.finalize());
        // The temp file is gone after the rename.
        assert!(!path
            .with_file_name(format!(
                "{}.tmp",
                path.file_name().unwrap().to_string_lossy()
            ))
            .exists());
    }

    #[test]
    fn corrupt_truncated_and_future_version_files_are_named_errors() {
        let (_, state) = sample_state();
        let path = temp("corrupt");
        state.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();

        // Corrupt: flip a payload byte.
        let corrupt = text.replacen("theta", "thetb", 1);
        let err = Snapshot::parse(&corrupt).unwrap_err().to_string();
        assert!(err.starts_with("snapshot:"), "{err}");
        assert!(err.contains("checksum"), "{err}");

        // Truncated: drop the tail.
        let err = Snapshot::parse(&text[..text.len() / 2])
            .unwrap_err()
            .to_string();
        assert!(err.starts_with("snapshot:"), "{err}");

        // Future version.
        let future = text.replacen("pg-hive-snapshot 1", "pg-hive-snapshot 999", 1);
        let err = Snapshot::parse(&future).unwrap_err().to_string();
        assert!(err.contains("version 999"), "{err}");

        // Not a snapshot at all.
        let err = Snapshot::parse("N a Person -\n").unwrap_err().to_string();
        assert!(err.contains("not a pg-hive snapshot"), "{err}");
    }

    #[test]
    fn config_guard_names_the_mismatching_field() {
        let base = SnapshotConfig::new(&PipelineConfig::elsh_adaptive(), 1000);
        assert!(base.ensure_matches(&base.clone()).is_ok());
        for (mutate, field) in [
            (
                Box::new(|c: &mut SnapshotConfig| c.method = ClusterMethod::MinHash)
                    as Box<dyn Fn(&mut SnapshotConfig)>,
                "method",
            ),
            (Box::new(|c: &mut SnapshotConfig| c.theta = 0.5), "theta"),
            (Box::new(|c: &mut SnapshotConfig| c.seed = 7), "seed"),
            (
                Box::new(|c: &mut SnapshotConfig| c.chunk_size = 9),
                "chunk-size",
            ),
        ] {
            let mut other = base.clone();
            mutate(&mut other);
            let err = base.ensure_matches(&other).unwrap_err().to_string();
            assert!(
                err.contains(&format!("{field}=")),
                "expected {field} in: {err}"
            );
            assert!(
                err.starts_with("snapshot: incompatible configuration"),
                "{err}"
            );
        }
    }

    #[test]
    fn resume_context_round_trips_with_watch_sections() {
        let (d, state) = sample_state();
        let registry = LabelSetRegistry::from_snapshot_lines([
            "set",
            "set Person",
            "id n2 0",
            "id node%20one 1",
        ])
        .unwrap();
        let ctx = ResumeContext {
            config: SnapshotConfig::new(d.config(), 512),
            state,
            registry,
            watch: Some(WatchCheckpoint {
                input: "data dir/with space".into(),
                format: "csv".into(),
                pass: 7,
                warnings: StreamWarnings {
                    cross_chunk_edges: 1,
                    unresolved_edges: 2,
                    deferred_edges: 3,
                    evicted_edges: 4,
                    duplicate_nodes: 5,
                },
                files: vec![
                    FileCheckpoint {
                        path: "data dir/nodes.csv".into(),
                        offset: 123,
                        tail: b"last,line\n".to_vec(),
                        header: Some(b"id,labels\n".to_vec()),
                        required: true,
                    },
                    FileCheckpoint {
                        path: "data dir/edges.csv".into(),
                        offset: 0,
                        tail: Vec::new(),
                        header: None,
                        required: false,
                    },
                ],
            }),
            pending: vec![
                Record::Edge {
                    src: "node one".into(),
                    tgt: "n2".into(),
                    labels: vec!["KNOWS OF".into()],
                    props: vec![
                        ("since".into(), Value::parse_lexical("2020-01-01")),
                        ("note".into(), Value::from("has space")),
                        ("weight".into(), Value::parse_lexical("2.5")),
                    ],
                },
                Record::Edge {
                    src: "n2".into(),
                    tgt: "ghost".into(),
                    labels: Vec::new(),
                    props: Vec::new(),
                },
            ],
        };
        let path = temp("ctx");
        ctx.save(&path).unwrap();
        let back = ResumeContext::load(&path).unwrap();
        assert_eq!(back.config, ctx.config);
        assert_eq!(back.watch, ctx.watch);
        assert_eq!(back.pending, ctx.pending);
        assert_eq!(back.state.finalize(), ctx.state.finalize());
        assert_eq!(
            back.registry.snapshot_lines(),
            ctx.registry.snapshot_lines()
        );
        // Saving the reloaded context reproduces the exact file bytes.
        assert_eq!(back.to_snapshot().to_text(), ctx.to_snapshot().to_text());
    }

    #[test]
    fn missing_sections_are_named() {
        let snap = Snapshot::new();
        let err = ResumeContext::from_snapshot(&snap).unwrap_err().to_string();
        assert!(err.contains("[config]"), "{err}");
        let path = temp("stateless");
        let (d, state) = sample_state();
        ResumeContext {
            config: SnapshotConfig::new(d.config(), 1),
            state,
            registry: LabelSetRegistry::default(),
            watch: None,
            pending: Vec::new(),
        }
        .save(&path)
        .unwrap();
        let loaded = ResumeContext::load(&path).unwrap();
        assert!(loaded.watch.is_none());
    }

    #[test]
    fn sigcache_section_is_optional_and_round_trips() {
        use crate::sigcache::CachedChunk;
        use pg_hive_lsh::Clustering;
        let (d, state) = sample_state();
        let config = SnapshotConfig::new(d.config(), 512);
        let registry = LabelSetRegistry::default();

        // No cache / empty cache → no [sigcache] section, and loading
        // such a snapshot yields a cold cache (pre-cache compatibility).
        let bare = context_snapshot_cached(&config, &state, &registry, None, &[], None);
        assert!(bare.section(SECTION_SIGCACHE).is_none());
        let empty = SignatureCache::default();
        let still_bare =
            context_snapshot_cached(&config, &state, &registry, None, &[], Some(&empty));
        assert_eq!(still_bare.to_text(), bare.to_text());
        assert!(sigcache_from_snapshot(&bare, 8).unwrap().is_empty());

        // A populated cache round-trips through the section.
        let cache = SignatureCache::default();
        cache.insert(
            0xABCD,
            CachedChunk {
                nodes: Clustering {
                    assignment: vec![0, 1],
                    num_clusters: 2,
                },
                edges: Clustering {
                    assignment: Vec::new(),
                    num_clusters: 0,
                },
            },
        );
        let snap = context_snapshot_cached(&config, &state, &registry, None, &[], Some(&cache));
        let reparsed = Snapshot::parse(&snap.to_text()).unwrap();
        // Unknown-to-ResumeContext sections are ignored: the context loads.
        assert!(ResumeContext::from_snapshot(&reparsed).is_ok());
        let back = sigcache_from_snapshot(&reparsed, 8).unwrap();
        assert_eq!(back.snapshot_lines(), cache.snapshot_lines());
        assert!(back.lookup(0xABCD, 2, 0).is_some());
    }

    #[test]
    fn state_with_endpoints_and_cardinality_round_trips() {
        let mut state = SchemaState::new(0.9);
        state.absorb_edge_candidates(vec![EdgeType {
            labels: label_set(&["KNOWS"]),
            props: BTreeMap::new(),
            endpoints: [
                (label_set(&["Person"]), label_set(&["Person", "Admin"])),
                (LabelSet::new(), label_set(&["Person"])),
                (label_set(&["Person"]), LabelSet::new()),
            ]
            .into(),
            instance_count: 3,
            members: vec![],
            cardinality: Some(Cardinality {
                max_out: 4,
                max_in: 2,
            }),
        }]);
        let back = state_from_lines(&state_to_lines(&state)).unwrap();
        assert_eq!(back.finalize(), state.finalize());
    }
}
