//! The canonical, mergeable schema core: [`SchemaState`].
//!
//! A discovered schema should be a function of the *graph*, not of the byte
//! order the graph arrived in. The historical pipeline merged every chunk's
//! candidate types directly into a growing [`SchemaGraph`] with the greedy
//! Algorithm-2 rules, so the outcome of unlabeled-cluster resolution (and
//! the order of the serialized types) depended on chunk arrival order and
//! on each chunk's interning order. `SchemaState` separates the two phases:
//!
//! 1. **Absorb** (associative + commutative): labeled types pool into a
//!    `BTreeMap` keyed by label set; unresolved abstract (unlabeled)
//!    patterns pool into a `BTreeMap` keyed by property-key set. Every leaf
//!    operation — label union, occurrence addition, kind lattice join,
//!    endpoint union, cardinality maximum — is order-insensitive, so
//!    absorbing chunk states in *any* order (serial, a worker pool's
//!    completion order, a `watch` pass) produces the same state.
//! 2. **Finalize** (deterministic): abstract patterns are resolved against
//!    the pooled labeled types with the Jaccard-θ rules of Algorithm 2, in
//!    canonical (sorted key-set) order, and the resulting [`SchemaGraph`]
//!    is canonically sorted — so serialization is byte-stable.
//!
//! The split is what makes drift monitoring cheap: `pg-hive watch` keeps
//! one resident `SchemaState`, absorbs only the chunks appended since the
//! previous pass, and re-finalizes — no full re-discovery per pass.
//!
//! ## Concurrency contract
//!
//! Every absorb entry point ([`SchemaState::absorb_node_candidates`],
//! [`SchemaState::absorb_edge_candidates`], [`SchemaState::absorb_schema`],
//! [`SchemaState::merge`]) deliberately takes `&mut self`: mutation is
//! serialized by the **type system**, not by hidden interior locking.
//! A concurrent holder (the multi-tenant server in
//! [`crate::serve`], a parallel fold) must wrap the state in its own
//! `Mutex` and follow a strict lock order — any shared map that *locates*
//! states is locked strictly above the per-state mutex and released before
//! it is taken (see the [`crate::serve`] module docs for the two-level
//! order the server uses). Because absorb is associative and commutative,
//! coarse per-state locking costs no correctness: whichever interleaving
//! the lock admits finalizes to the same canonical schema.

use crate::config::SamplingConfig;
use crate::extract::{merge_edge_candidates, merge_node_candidates};
use crate::postprocess::{
    compute_edge_type_cardinality, infer_edge_type_datatypes, infer_node_type_datatypes,
};
use crate::schema::{EdgeType, LabelSet, NodeType, SchemaGraph};
use pg_hive_graph::PropertyGraph;
use std::collections::{BTreeMap, BTreeSet};

/// A property-key set — the pool key for unresolved abstract patterns.
type KeySet = BTreeSet<String>;

/// Order-invariant, mergeable discovery state (see the [module docs](self)).
///
/// ```
/// use pg_hive_core::state::SchemaState;
/// use pg_hive_core::{Discoverer, PipelineConfig};
/// use pg_hive_graph::{GraphBuilder, Value};
///
/// let chunk = |name: &str| {
///     let mut b = GraphBuilder::new();
///     b.add_node(&["Person"], &[("name", Value::from(name))]);
///     b.finish()
/// };
/// let d = Discoverer::new(PipelineConfig::elsh_adaptive());
/// let (a, b) = (d.discover_chunk_state(&chunk("Ann")), d.discover_chunk_state(&chunk("Bob")));
/// // absorb is commutative: a⊕b and b⊕a finalize identically.
/// let (mut ab, mut ba) = (d.new_state(), d.new_state());
/// ab.merge(a.clone());
/// ab.merge(b.clone());
/// ba.merge(b);
/// ba.merge(a);
/// assert_eq!(ab.finalize(), ba.finalize());
/// assert_eq!(ab.finalize().node_types[0].instance_count, 2);
/// ```
#[derive(Debug, Clone)]
pub struct SchemaState {
    pub(crate) theta: f64,
    pub(crate) labeled_nodes: BTreeMap<LabelSet, NodeType>,
    pub(crate) abstract_nodes: BTreeMap<KeySet, NodeType>,
    pub(crate) labeled_edges: BTreeMap<LabelSet, EdgeType>,
    pub(crate) abstract_edges: BTreeMap<KeySet, EdgeType>,
    /// Labeled node pools touched since the last [`Self::finalize_cached`].
    dirty_nodes: BTreeSet<LabelSet>,
    /// Labeled edge pools touched since the last [`Self::finalize_cached`].
    dirty_edges: BTreeSet<LabelSet>,
    /// Set by any mutation the per-pool dirty sets cannot describe
    /// (abstract absorbs, post-processing, member clears) — forces the
    /// next [`Self::finalize_cached`] to recompute from scratch.
    dirty_all: bool,
    /// The last finalized schema, reusable while nothing is dirty and
    /// patchable per-pool while the state has no abstract patterns.
    finalize_cache: Option<SchemaGraph>,
}

impl SchemaState {
    /// Empty state with the given Jaccard merge threshold θ.
    pub fn new(theta: f64) -> Self {
        Self {
            theta,
            labeled_nodes: BTreeMap::new(),
            abstract_nodes: BTreeMap::new(),
            labeled_edges: BTreeMap::new(),
            abstract_edges: BTreeMap::new(),
            dirty_nodes: BTreeSet::new(),
            dirty_edges: BTreeSet::new(),
            dirty_all: false,
            finalize_cache: None,
        }
    }

    /// The Jaccard threshold used by [`Self::finalize`].
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// True when nothing has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.labeled_nodes.is_empty()
            && self.abstract_nodes.is_empty()
            && self.labeled_edges.is_empty()
            && self.abstract_edges.is_empty()
    }

    /// Pooled type count (labeled + unresolved abstract, nodes + edges) —
    /// an upper bound on the finalized schema's type count.
    pub fn pooled_types(&self) -> usize {
        self.labeled_nodes.len()
            + self.abstract_nodes.len()
            + self.labeled_edges.len()
            + self.abstract_edges.len()
    }

    /// Absorb candidate node types (e.g. one chunk's clusters summarized by
    /// [`crate::extract::candidate_node_types`]). Labeled candidates pool by
    /// label set; unlabeled ones pool by key set and stay unresolved until
    /// [`Self::finalize`].
    ///
    /// Takes `&mut self` by contract (see the [module docs](self)
    /// "Concurrency contract"): shared holders guard the state with one
    /// mutex held for the whole absorb, locked *below* any map that
    /// locates states.
    pub fn absorb_node_candidates(&mut self, cands: Vec<NodeType>) {
        for cand in cands {
            if cand.labels.is_empty() {
                // Abstract patterns participate in global Jaccard-θ
                // resolution — no per-pool patch can describe their effect.
                self.dirty_all = true;
                pool(
                    &mut self.abstract_nodes,
                    key_set(&cand.props),
                    cand,
                    |a, b| a.absorb(b),
                );
            } else {
                self.dirty_nodes.insert(cand.labels.clone());
                pool(
                    &mut self.labeled_nodes,
                    cand.labels.clone(),
                    cand,
                    |a, b| a.absorb(b),
                );
            }
        }
    }

    /// Absorb candidate edge types (see [`Self::absorb_node_candidates`]).
    pub fn absorb_edge_candidates(&mut self, cands: Vec<EdgeType>) {
        for cand in cands {
            if cand.labels.is_empty() {
                self.dirty_all = true;
                pool(
                    &mut self.abstract_edges,
                    key_set(&cand.props),
                    cand,
                    |a, b| a.absorb(b),
                );
            } else {
                self.dirty_edges.insert(cand.labels.clone());
                pool(
                    &mut self.labeled_edges,
                    cand.labels.clone(),
                    cand,
                    |a, b| a.absorb(b),
                );
            }
        }
    }

    /// Absorb a whole schema (e.g. a previously serialized snapshot): its
    /// types are treated as candidates.
    pub fn absorb_schema(&mut self, schema: SchemaGraph) {
        self.absorb_node_candidates(schema.node_types);
        self.absorb_edge_candidates(schema.edge_types);
    }

    /// Merge another state into this one. Associative and commutative:
    /// `a ⊕ (b ⊕ c) = (a ⊕ b) ⊕ c` and `a ⊕ b = b ⊕ a` up to member-list
    /// order (member ids are chunk-local and cleared on streaming paths).
    /// Keeps `self`'s θ.
    pub fn merge(&mut self, other: SchemaState) {
        for (_, t) in other.labeled_nodes {
            self.absorb_node_candidates(vec![t]);
        }
        for (_, t) in other.abstract_nodes {
            self.absorb_node_candidates(vec![t]);
        }
        for (_, t) in other.labeled_edges {
            self.absorb_edge_candidates(vec![t]);
        }
        for (_, t) in other.abstract_edges {
            self.absorb_edge_candidates(vec![t]);
        }
    }

    /// Run post-processing (datatype inference, cardinalities — stages
    /// (e)–(g)) over every pooled type's members against `g`. Kinds are
    /// lattice joins and cardinality bounds are maxima, so re-running after
    /// more batches were absorbed only ever refines monotonically.
    pub fn postprocess(&mut self, g: &PropertyGraph, sampling: Option<&SamplingConfig>) {
        self.dirty_all = true;
        for t in self.labeled_nodes.values_mut() {
            infer_node_type_datatypes(t, g, sampling);
        }
        for t in self.abstract_nodes.values_mut() {
            infer_node_type_datatypes(t, g, sampling);
        }
        for t in self.labeled_edges.values_mut() {
            infer_edge_type_datatypes(t, g, sampling);
            compute_edge_type_cardinality(t, g);
        }
        for t in self.abstract_edges.values_mut() {
            infer_edge_type_datatypes(t, g, sampling);
            compute_edge_type_cardinality(t, g);
        }
    }

    /// Drop all member lists — mandatory before a chunk-local state leaves
    /// its chunk (the ids are chunk-local and die with it).
    pub fn clear_members(&mut self) {
        self.dirty_all = true;
        for t in self.labeled_nodes.values_mut() {
            t.members.clear();
        }
        for t in self.abstract_nodes.values_mut() {
            t.members.clear();
        }
        for t in self.labeled_edges.values_mut() {
            t.members.clear();
        }
        for t in self.abstract_edges.values_mut() {
            t.members.clear();
        }
    }

    /// Resolve the pooled state into a canonical [`SchemaGraph`]:
    ///
    /// 1. labeled types enter in sorted label-set order;
    /// 2. abstract patterns are resolved in sorted key-set order with the
    ///    Jaccard-θ rules of Algorithm 2 (best labeled match, then
    ///    abstract-vs-abstract, else a new ABSTRACT type);
    /// 3. the result is canonically sorted, so equal states serialize to
    ///    byte-identical text.
    ///
    /// Non-consuming: a long-running `watch` finalizes after every pass
    /// while keeping the state resident.
    pub fn finalize(&self) -> SchemaGraph {
        let mut schema = SchemaGraph {
            node_types: self.labeled_nodes.values().cloned().collect(),
            edge_types: self.labeled_edges.values().cloned().collect(),
        };
        merge_node_candidates(
            &mut schema,
            self.abstract_nodes.values().cloned().collect(),
            self.theta,
        );
        merge_edge_candidates(
            &mut schema,
            self.abstract_edges.values().cloned().collect(),
            self.theta,
        );
        schema.sort_canonical();
        schema
    }

    /// [`Self::finalize`] with **incremental reuse** — always returns the
    /// exact schema `finalize()` would (the pure path stays the equality
    /// oracle; the equivalence suite proptests the identity), but spends
    /// only O(what changed since the previous call):
    ///
    /// - nothing absorbed since the last call → the cached schema is
    ///   returned as-is (a no-op `watch` pass finalizes in O(1));
    /// - only labeled pools were touched and the state holds **no**
    ///   abstract patterns → the cached schema is patched at exactly the
    ///   dirty label sets (labeled finalization is per-pool independent:
    ///   each labeled type maps to one schema type, so replacing the dirty
    ///   entries and re-sorting reproduces the full recompute);
    /// - anything else (abstract absorbs, post-processing, member clears)
    ///   → full recompute. Abstract patterns resolve against *all* labeled
    ///   types with the global Jaccard-θ rules of Algorithm 2, so a
    ///   labeled change can flip a resolution decision — no sound per-pool
    ///   patch exists and the cache is rebuilt instead.
    ///
    /// Abstract pools only ever grow, so "no abstract patterns now"
    /// guarantees the cached schema was also computed without any — the
    /// patch never has to undo a resolution.
    pub fn finalize_cached(&mut self) -> SchemaGraph {
        let clean = self.dirty_nodes.is_empty() && self.dirty_edges.is_empty() && !self.dirty_all;
        let patchable =
            !self.dirty_all && self.abstract_nodes.is_empty() && self.abstract_edges.is_empty();
        let fresh = match self.finalize_cache.take() {
            Some(cached) if clean => cached,
            Some(mut cached) if patchable => {
                for labels in &self.dirty_nodes {
                    let t = self.labeled_nodes[labels].clone();
                    match cached.node_type_by_labels(labels) {
                        Some(i) => cached.node_types[i] = t,
                        None => cached.node_types.push(t),
                    }
                }
                for labels in &self.dirty_edges {
                    let t = self.labeled_edges[labels].clone();
                    match cached.edge_type_by_labels(labels) {
                        Some(i) => cached.edge_types[i] = t,
                        None => cached.edge_types.push(t),
                    }
                }
                cached.sort_canonical();
                cached
            }
            _ => self.finalize(),
        };
        self.dirty_nodes.clear();
        self.dirty_edges.clear();
        self.dirty_all = false;
        self.finalize_cache = Some(fresh.clone());
        fresh
    }
}

/// Absorb `cand` into the pool entry at `key`, or insert it.
fn pool<K: Ord, T>(map: &mut BTreeMap<K, T>, key: K, cand: T, absorb: impl FnOnce(&mut T, T)) {
    match map.entry(key) {
        std::collections::btree_map::Entry::Occupied(mut e) => absorb(e.get_mut(), cand),
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(cand);
        }
    }
}

fn key_set(props: &BTreeMap<String, crate::schema::PropertySpec>) -> KeySet {
    props.keys().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{label_set, PropertySpec};

    fn node_type(labels: &[&str], keys: &[&str], count: u64) -> NodeType {
        NodeType {
            labels: label_set(labels),
            props: keys
                .iter()
                .map(|k| {
                    (
                        k.to_string(),
                        PropertySpec {
                            occurrences: count,
                            kind: None,
                        },
                    )
                })
                .collect(),
            instance_count: count,
            members: vec![],
        }
    }

    #[test]
    fn absorb_pools_labeled_by_label_set() {
        let mut s = SchemaState::new(0.9);
        s.absorb_node_candidates(vec![
            node_type(&["Person"], &["name"], 2),
            node_type(&["Person"], &["age"], 3),
            node_type(&["Org"], &["url"], 1),
        ]);
        let out = s.finalize();
        assert_eq!(out.node_types.len(), 2);
        let person = out.node_type_by_labels(&label_set(&["Person"])).unwrap();
        assert_eq!(out.node_types[person].instance_count, 5);
        assert!(out.node_types[person].props.contains_key("age"));
    }

    #[test]
    fn abstract_patterns_stay_pooled_until_finalize() {
        let mut s = SchemaState::new(0.9);
        s.absorb_node_candidates(vec![node_type(&[], &["name", "age"], 1)]);
        s.absorb_node_candidates(vec![node_type(&[], &["name", "age"], 2)]);
        assert_eq!(s.pooled_types(), 1, "same key set pools into one pattern");
        // No labeled match yet: finalize emits one ABSTRACT type.
        let out = s.finalize();
        assert_eq!(out.node_types.len(), 1);
        assert!(out.node_types[0].is_abstract());
        assert_eq!(out.node_types[0].instance_count, 3);

        // A labeled type with the same keys arrives later — resolution at
        // finalize time folds the whole pattern in, regardless of which
        // arrived first.
        s.absorb_node_candidates(vec![node_type(&["Person"], &["name", "age"], 4)]);
        let out = s.finalize();
        assert_eq!(out.node_types.len(), 1);
        assert_eq!(out.node_types[0].labels, label_set(&["Person"]));
        assert_eq!(out.node_types[0].instance_count, 7);
    }

    #[test]
    fn merge_is_commutative_and_grouping_invariant() {
        let parts: Vec<SchemaState> = (0..4u64)
            .map(|i| {
                let mut s = SchemaState::new(0.9);
                s.absorb_node_candidates(vec![
                    node_type(&["Person"], &["name"], i + 1),
                    node_type(&[], &["x", "y"], 1),
                ]);
                s.absorb_edge_candidates(vec![EdgeType {
                    labels: label_set(&["KNOWS"]),
                    props: BTreeMap::new(),
                    endpoints: [(label_set(&["Person"]), label_set(&["Person"]))].into(),
                    instance_count: i + 1,
                    members: vec![],
                    cardinality: None,
                }]);
                s
            })
            .collect();

        // Left fold in order vs reverse order vs pairwise tree.
        let fold = |order: &[usize]| {
            let mut acc = SchemaState::new(0.9);
            for &i in order {
                acc.merge(parts[i].clone());
            }
            acc.finalize()
        };
        let a = fold(&[0, 1, 2, 3]);
        let b = fold(&[3, 1, 0, 2]);
        let mut left = SchemaState::new(0.9);
        left.merge(parts[0].clone());
        left.merge(parts[1].clone());
        let mut right = SchemaState::new(0.9);
        right.merge(parts[2].clone());
        right.merge(parts[3].clone());
        left.merge(right);
        let c = left.finalize();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.node_instances(), 4 + 3 + 2 + 1 + 4);
    }

    #[test]
    fn finalize_is_canonically_sorted_and_repeatable() {
        let mut s = SchemaState::new(0.9);
        s.absorb_node_candidates(vec![
            node_type(&["Zed"], &[], 1),
            node_type(&["Alpha"], &[], 1),
            node_type(&[], &["zz"], 1),
        ]);
        let out = s.finalize();
        assert_eq!(out, s.finalize(), "finalize is pure");
        let labels: Vec<String> = out
            .node_types
            .iter()
            .map(|t| t.labels.iter().cloned().collect::<Vec<_>>().join("|"))
            .collect();
        assert_eq!(labels, vec!["", "Alpha", "Zed"], "canonical order");
    }

    #[test]
    fn finalize_cached_equals_full_finalize_across_interleavings() {
        let mut s = SchemaState::new(0.9);
        // Cold call (no cache yet).
        assert_eq!(s.finalize_cached(), s.finalize());
        // Labeled-only appends: the patch path.
        s.absorb_node_candidates(vec![node_type(&["Person"], &["name"], 2)]);
        s.absorb_edge_candidates(vec![EdgeType {
            labels: label_set(&["KNOWS"]),
            props: BTreeMap::new(),
            endpoints: [(label_set(&["Person"]), label_set(&["Person"]))].into(),
            instance_count: 1,
            members: vec![],
            cardinality: None,
        }]);
        assert_eq!(s.finalize_cached(), s.finalize());
        // No-op pass: cached clone.
        assert_eq!(s.finalize_cached(), s.finalize());
        // Append into an existing pool and a brand-new pool.
        s.absorb_node_candidates(vec![
            node_type(&["Person"], &["age"], 3),
            node_type(&["Org"], &["url"], 1),
        ]);
        assert_eq!(s.finalize_cached(), s.finalize());
        // An abstract pattern arrives: forces and keeps forcing the full
        // path (resolution is global).
        s.absorb_node_candidates(vec![node_type(&[], &["name", "age"], 1)]);
        assert_eq!(s.finalize_cached(), s.finalize());
        s.absorb_node_candidates(vec![node_type(&["Person"], &["name"], 1)]);
        assert_eq!(s.finalize_cached(), s.finalize());
        assert_eq!(s.finalize_cached(), s.finalize());
    }

    #[test]
    fn finalize_cached_tracks_merge_and_clear_members() {
        let mut s = SchemaState::new(0.9);
        s.absorb_node_candidates(vec![node_type(&["Person"], &["name"], 2)]);
        let _ = s.finalize_cached();
        let mut other = SchemaState::new(0.9);
        other.absorb_node_candidates(vec![node_type(&["Zed"], &["z"], 1)]);
        s.merge(other);
        assert_eq!(s.finalize_cached(), s.finalize());
        let mut with_members = node_type(&["Person"], &["name"], 1);
        with_members.members = vec![7];
        s.absorb_node_candidates(vec![with_members]);
        let _ = s.finalize_cached();
        s.clear_members();
        assert_eq!(
            s.finalize_cached(),
            s.finalize(),
            "clear_members must invalidate the cache"
        );
    }

    #[test]
    fn empty_state_finalizes_empty() {
        let s = SchemaState::new(0.9);
        assert!(s.is_empty());
        let out = s.finalize();
        assert!(out.node_types.is_empty() && out.edge_types.is_empty());
    }
}
