//! Algorithm 1: the end-to-end PG-HIVE pipeline, static and incremental.
//!
//! ```text
//! for each batch G_si in G:
//!     D           <- loadNodesAndEdges(G_si)        (a)
//!     X, b, T     <- preprocess(D)                  (b)
//!     C           <- LSHClustering(X, b, T)         (c)
//!     S'          <- extractTypes(C, S, θ = 0.9)    (d)  Algorithm 2
//!     if postProcessing or last batch:
//!         inferPropertyConstraints(S')              (e)
//!         inferDataTypes(S')                        (f)
//!         computeCardinalities(S')                  (g)
//!     S <- updateSchema(S')
//! ```

use crate::cluster::cluster_elements;
use crate::config::{EmbeddingStrategy, PipelineConfig};
use crate::extract::{candidate_edge_types, candidate_node_types};
use crate::preprocess::{
    edge_representations, label_sentences, node_representations, signature_scan,
};
use crate::schema::SchemaGraph;
use crate::sigcache::{CachedChunk, SignatureCache};
use crate::snapshot::SnapshotError;
use crate::state::SchemaState;
use pg_hive_embed::{HashEmbedder, LabelEmbedder, Word2Vec};
use pg_hive_graph::stream::multi::SourceEntry;
use pg_hive_graph::{
    split_batches, ChunkedTextReader, GraphBatch, GraphBuilder, LabelSetRegistry, MultiSource,
    PropertyGraph, Record, StreamError, StreamWarnings,
};
use pg_hive_lsh::{AdaptiveParams, Clustering, ElementClass};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Wall-clock spent in each stage, summed over batches.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Stage (b): embeddings + representation vectors.
    pub preprocess: Duration,
    /// Stage (c): LSH clustering.
    pub clustering: Duration,
    /// Stage (d): type extraction and merging (Algorithm 2).
    pub extraction: Duration,
    /// Stages (e)–(g): constraints, datatypes, cardinalities.
    pub postprocess: Duration,
}

impl StageTimings {
    /// Time until type discovery — what Fig. 5 reports (preprocessing,
    /// clustering, and type extraction; post-processing excluded).
    pub fn discovery(&self) -> Duration {
        self.preprocess + self.clustering + self.extraction
    }

    /// Everything.
    pub fn total(&self) -> Duration {
        self.discovery() + self.postprocess
    }
}

/// Extra observability into one run.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Wall-clock per stage, summed over batches.
    pub timings: StageTimings,
    /// Per-batch wall-clock of the main pipeline (Fig. 7's series).
    pub batch_times: Vec<Duration>,
    /// Total LSH clusters produced before merging (nodes).
    pub node_clusters: usize,
    /// Total LSH clusters produced before merging (edges).
    pub edge_clusters: usize,
    /// Nodes processed across batches.
    pub node_elements: usize,
    /// Distinct node signatures actually hashed by LSH (summed over
    /// batches) — `node_elements / node_signatures` is the dedup win.
    pub node_signatures: usize,
    /// Edges processed across batches.
    pub edge_elements: usize,
    /// Distinct edge signatures actually hashed by LSH.
    pub edge_signatures: usize,
    /// Adaptive parameters chosen for the *first* batch, when the adaptive
    /// path was used.
    pub adaptive_nodes: Option<AdaptiveParams>,
    /// Adaptive parameters for the first batch's edges (see
    /// `adaptive_nodes`).
    pub adaptive_edges: Option<AdaptiveParams>,
}

/// Result of a discovery run.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// The inferred schema graph.
    pub schema: SchemaGraph,
    /// For every node of the input graph, the index of its node type in
    /// `schema.node_types`.
    pub node_assignment: Vec<u32>,
    /// For every edge, the index of its edge type in `schema.edge_types`.
    pub edge_assignment: Vec<u32>,
    /// For every node, a **raw LSH cluster** id (global across batches,
    /// before Algorithm 2's merging). The paper's F1* evaluation judges
    /// discovered clusters by their majority label, so this is the
    /// granularity `pg-hive-eval` scores.
    pub node_cluster_assignment: Vec<u32>,
    /// Raw cluster id per edge (see `node_cluster_assignment`).
    pub edge_cluster_assignment: Vec<u32>,
    /// Observability.
    pub stats: PipelineStats,
}

/// Result of a [`Discoverer::discover_stream`] run over dropped chunks.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// The accumulated schema (no member lists — chunks are gone),
    /// canonically finalized from the run's [`SchemaState`].
    pub schema: SchemaGraph,
    /// Wall-clock per chunk, in input order.
    pub chunk_times: Vec<Duration>,
    /// Total elements (nodes + edges) consumed.
    pub elements: u64,
}

/// Result of a [`Discoverer::discover_sharded`] merge-tree run: the root
/// of the fold, after cross-shard pending-edge resolution.
#[derive(Debug)]
pub struct ShardedResult {
    /// The folded root state — finalize for the schema. Byte-identical to
    /// the serial (`shards = 1`) run's for every shard count.
    pub state: SchemaState,
    /// The merged id → label-set registry across every input.
    pub registry: LabelSetRegistry,
    /// Carried edges no input's registry could resolve — persisted by
    /// `--save-state` so a later `merge-state` can resolve them.
    pub pending: Vec<Record>,
    /// Per-category warning counts summed across shards and files.
    pub warnings: StreamWarnings,
    /// Elements (nodes + edges) consumed, including resolved carried edges.
    pub elements: u64,
    /// Number of inputs (files / CSV dataset dirs) processed.
    pub inputs: usize,
}

/// One shard's (or merge level's) accumulator while the tree folds.
struct ShardOutcome {
    state: SchemaState,
    registry: LabelSetRegistry,
    warnings: StreamWarnings,
    pending: Vec<Record>,
    elements: u64,
    inputs: usize,
}

impl ShardOutcome {
    /// Fold a sibling into this node of the merge tree.
    fn absorb(&mut self, other: ShardOutcome) {
        self.state.merge(other.state);
        self.warnings.absorb(&other.warnings);
        self.warnings.duplicate_nodes += self.registry.merge(&other.registry);
        self.pending.extend(other.pending);
        self.elements += other.elements;
        self.inputs += other.inputs;
    }
}

/// Accounting from one [`Discoverer::absorb_stream`] pass (the schema lives
/// in the caller's [`SchemaState`], which survives across passes — that is
/// the point).
#[derive(Debug, Clone)]
pub struct AbsorbReport {
    /// Elements (nodes + edges) consumed by this pass.
    pub elements: u64,
    /// Wall-clock per chunk of this pass, in input order.
    pub chunk_times: Vec<Duration>,
}

/// The PG-HIVE schema discoverer (Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct Discoverer {
    config: PipelineConfig,
}

impl Discoverer {
    /// Discoverer with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Static run: the whole graph as a single batch.
    pub fn discover(&self, g: &PropertyGraph) -> DiscoveryResult {
        let batch = GraphBatch {
            nodes: g.nodes().map(|(id, _)| id).collect(),
            edges: g.edges().map(|(id, _)| id).collect(),
        };
        self.discover_batches(g, std::slice::from_ref(&batch))
    }

    /// Incremental run over `n` deterministic random batches (§4.6 / Fig. 7).
    pub fn discover_incremental(&self, g: &PropertyGraph, n_batches: usize) -> DiscoveryResult {
        let batches = split_batches(g, n_batches, self.config.seed);
        self.discover_batches(g, &batches)
    }

    /// Algorithm 1 over explicit batches. Post-processing runs after every
    /// batch when `post_process_each_batch` is set, and always after the
    /// final batch. Candidate types pool into a [`SchemaState`]; the final
    /// schema is its canonical finalization, so the result is invariant to
    /// interning order and to how elements were grouped into batches.
    pub fn discover_batches(&self, g: &PropertyGraph, batches: &[GraphBatch]) -> DiscoveryResult {
        let mut state = self.new_state();
        let mut stats = PipelineStats::default();
        let mut node_cluster_assignment = vec![u32::MAX; g.node_count()];
        let mut edge_cluster_assignment = vec![u32::MAX; g.edge_count()];
        let mut node_cluster_offset = 0u32;
        let mut edge_cluster_offset = 0u32;
        // The embedder is batch-independent for the hash strategy — build it
        // once per run instead of once per batch (ROADMAP perf lever);
        // Word2Vec still trains on each batch's label sentences.
        let shared = self.shared_embedder();

        for (i, batch) in batches.iter().enumerate() {
            let t_batch = Instant::now();

            // (b) preprocess: embedder + representation vectors.
            let t0 = Instant::now();
            let owned;
            let embedder: &dyn LabelEmbedder = match shared.as_deref() {
                Some(e) => e,
                None => {
                    owned = self.make_embedder(g, batch);
                    owned.as_ref()
                }
            };
            let nodes = node_representations(g, &batch.nodes, embedder, self.config.label_weight);
            let edges = edge_representations(g, &batch.edges, embedder, self.config.label_weight);
            stats.timings.preprocess += t0.elapsed();

            // (c) LSH clustering over distinct signatures, broadcast back
            // to elements inside `cluster_elements`.
            let t1 = Instant::now();
            let node_out = cluster_elements(&nodes.repr, ElementClass::Nodes, &self.config);
            let edge_out = cluster_elements(&edges.repr, ElementClass::Edges, &self.config);
            stats.timings.clustering += t1.elapsed();
            stats.node_clusters += node_out.clustering.num_clusters;
            stats.edge_clusters += edge_out.clustering.num_clusters;
            stats.node_elements += nodes.repr.len();
            stats.node_signatures += node_out.hashed_points;
            stats.edge_elements += edges.repr.len();
            stats.edge_signatures += edge_out.hashed_points;
            // Advance the global cluster-id offsets with *checked*
            // arithmetic before touching the assignment arrays: on huge
            // many-batch runs an unchecked `as u32` accumulation would wrap
            // silently and corrupt every later cluster id.
            let next_node_offset = advance_cluster_offset(
                node_cluster_offset,
                node_out.clustering.num_clusters,
                "node",
            );
            let next_edge_offset = advance_cluster_offset(
                edge_cluster_offset,
                edge_out.clustering.num_clusters,
                "edge",
            );
            for (pos, &id) in batch.nodes.iter().enumerate() {
                node_cluster_assignment[id.index()] =
                    node_cluster_offset + node_out.clustering.assignment[pos];
            }
            for (pos, &id) in batch.edges.iter().enumerate() {
                edge_cluster_assignment[id.index()] =
                    edge_cluster_offset + edge_out.clustering.assignment[pos];
            }
            node_cluster_offset = next_node_offset;
            edge_cluster_offset = next_edge_offset;
            if i == 0 {
                stats.adaptive_nodes = node_out.adaptive.clone();
                stats.adaptive_edges = edge_out.adaptive.clone();
            }

            // (d) type extraction (Algorithm 2): candidates pool into the
            // state; unlabeled clusters stay unresolved until finalize.
            let t2 = Instant::now();
            state.absorb_node_candidates(candidate_node_types(
                g,
                &batch.nodes,
                &node_out.clustering,
            ));
            state.absorb_edge_candidates(candidate_edge_types(
                g,
                &batch.edges,
                &edge_out.clustering,
            ));
            stats.timings.extraction += t2.elapsed();

            // (e)–(g) optional post-processing.
            let last = i + 1 == batches.len();
            if self.config.post_process_each_batch || last {
                let t3 = Instant::now();
                state.postprocess(g, self.config.datatype_sampling.as_ref());
                stats.timings.postprocess += t3.elapsed();
            }

            stats.batch_times.push(t_batch.elapsed());
        }

        let schema = state.finalize();
        let (node_assignment, edge_assignment) = assignments(g, &schema);
        DiscoveryResult {
            schema,
            node_assignment,
            edge_assignment,
            node_cluster_assignment,
            edge_cluster_assignment,
            stats,
        }
    }

    /// True streaming (§4.6's motivation: "process large datasets on
    /// machines with limited memory"): every chunk is an *independent*
    /// [`PropertyGraph`] — its own interners, its own ids — that can be
    /// dropped as soon as it is processed. Each chunk runs the full
    /// pipeline including post-processing (datatypes and cardinalities must
    /// be computed while the chunk's values are still in memory), and its
    /// schema merges into the running one; kinds join, counts add,
    /// cardinality bounds take maxima — all monotone.
    ///
    /// Because chunks are dropped, the result carries no member lists or
    /// element assignments (use [`Self::discover_batches`] when the full
    /// graph stays resident).
    ///
    /// ```
    /// use pg_hive_core::{Discoverer, PipelineConfig};
    /// use pg_hive_graph::stream::pgt::PgtSource;
    /// use pg_hive_graph::ChunkedTextReader;
    ///
    /// let text = "N a Person name=Ann\nN b Person name=Bob\nN c Org url=x.com\n\
    ///             E a c WORKS_AT -\nE b c WORKS_AT -\n";
    /// let mut reader = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), 2);
    /// let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    /// let result = d.discover_stream(std::iter::from_fn(|| reader.next_chunk().unwrap()));
    /// assert_eq!(result.schema.node_types.len(), 2); // Person, Org
    /// assert_eq!(result.schema.edge_types.len(), 1); // WORKS_AT
    /// ```
    pub fn discover_stream<I>(&self, chunks: I) -> StreamResult
    where
        I: IntoIterator<Item = PropertyGraph>,
    {
        let mut state = self.new_state();
        let report = self.absorb_stream(chunks, &mut state, 1);
        StreamResult {
            schema: state.finalize(),
            chunk_times: report.chunk_times,
            elements: report.elements,
        }
    }

    /// Pipeline-parallel [`Self::discover_stream`]: a worker pool of
    /// `threads` threads runs preprocess → LSH → extract → post-process on
    /// chunks *concurrently*, folding per-chunk [`SchemaState`]s into the
    /// running state as they complete. Because `SchemaState` absorption is
    /// associative **and commutative**, completion order does not matter —
    /// the result is byte-identical to the serial path for every thread
    /// count *without* the reorder buffer the pre-canonical engine needed
    /// (the proptests in `tests/tests/stream_parallel.rs` gate exactly
    /// this).
    ///
    /// Chunks are pulled from the iterator on the calling thread and handed
    /// to workers through a bounded channel, so at most `2 × threads`
    /// chunks are resident at once (plus whatever read-ahead the producer
    /// feeding the iterator keeps in flight); the result channel is bounded
    /// too, so in-flight state stays O(threads). Pair it with
    /// `pg_hive_graph::stream::ReadAheadChunks` and wall-clock tracks the
    /// *slower* of I/O and compute instead of their sum.
    ///
    /// `threads == 1` (or ≤ 1 chunk of work) degrades to the serial path.
    /// `chunk_times[i]` is chunk `i`'s processing time on its worker;
    /// cross-chunk merge time is excluded (it happens concurrently with
    /// later chunks' processing).
    ///
    /// ```
    /// use pg_hive_core::{Discoverer, PipelineConfig};
    /// use pg_hive_graph::stream::pgt::PgtSource;
    /// use pg_hive_graph::ReadAheadChunks;
    ///
    /// let text = "N a Person -\nN b Person -\nN c Org -\nE a c WORKS_AT -\n".to_string();
    /// // Producer thread parses up to 2 chunks ahead...
    /// let source = PgtSource::new(std::io::Cursor::new(text.into_bytes()));
    /// let mut ahead = ReadAheadChunks::spawn(source, 2, 2);
    /// // ...while 2 workers discover chunks concurrently.
    /// let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    /// let result =
    ///     d.discover_stream_parallel(std::iter::from_fn(|| ahead.next_chunk().unwrap()), 2);
    /// assert_eq!(result.schema.node_types.len(), 2); // identical to the serial path
    /// ```
    pub fn discover_stream_parallel<I>(&self, chunks: I, threads: usize) -> StreamResult
    where
        I: IntoIterator<Item = PropertyGraph>,
    {
        let mut state = self.new_state();
        let report = self.absorb_stream(chunks, &mut state, threads);
        StreamResult {
            schema: state.finalize(),
            chunk_times: report.chunk_times,
            elements: report.elements,
        }
    }

    /// Fold a stream of chunks into an **existing** [`SchemaState`] with
    /// `threads` workers (1 = serial). This is the engine under both
    /// `discover_stream*` entry points and the `pg-hive watch` drift
    /// monitor, which keeps one resident state across passes and absorbs
    /// only newly appended chunks — incremental, not re-discovery.
    pub fn absorb_stream<I>(
        &self,
        chunks: I,
        state: &mut SchemaState,
        threads: usize,
    ) -> AbsorbReport
    where
        I: IntoIterator<Item = PropertyGraph>,
    {
        self.absorb_stream_inner(chunks, state, threads, None)
    }

    /// [`Self::absorb_stream`] with a [`SignatureCache`] memoizing the
    /// embedding + LSH stages across chunks — and, because the cache is
    /// caller-owned, across *passes* (the `watch` steady state) and across
    /// process restarts (the cache persists in snapshots). Structurally
    /// repeated chunks skip straight from the cheap signature scan to the
    /// cached distinct-level clustering; the result is byte-identical to
    /// the uncached path (see [`crate::sigcache`] for the argument, and
    /// `tests/tests/incremental_equivalence.rs` for the proptest). The
    /// cache only engages when [`PipelineConfig::dedup`] is on; otherwise
    /// this degrades to the plain path.
    pub fn absorb_stream_cached<I>(
        &self,
        chunks: I,
        state: &mut SchemaState,
        threads: usize,
        cache: &SignatureCache,
    ) -> AbsorbReport
    where
        I: IntoIterator<Item = PropertyGraph>,
    {
        self.absorb_stream_inner(chunks, state, threads, Some(cache))
    }

    fn absorb_stream_inner<I>(
        &self,
        chunks: I,
        state: &mut SchemaState,
        threads: usize,
        cache: Option<&SignatureCache>,
    ) -> AbsorbReport
    where
        I: IntoIterator<Item = PropertyGraph>,
    {
        let threads = threads.max(1);
        if threads == 1 {
            let shared = self.shared_embedder();
            let mut chunk_times = Vec::new();
            let mut elements = 0u64;
            for chunk in chunks {
                let t = Instant::now();
                elements += (chunk.node_count() + chunk.edge_count()) as u64;
                state.merge(self.chunk_state_cached(&chunk, shared.as_deref(), cache));
                chunk_times.push(t.elapsed());
            }
            return AbsorbReport {
                elements,
                chunk_times,
            };
        }
        self.absorb_stream_parallel(chunks, state, threads, cache)
    }

    fn absorb_stream_parallel<I>(
        &self,
        chunks: I,
        state: &mut SchemaState,
        threads: usize,
        cache: Option<&SignatureCache>,
    ) -> AbsorbReport
    where
        I: IntoIterator<Item = PropertyGraph>,
    {
        struct ChunkOutcome {
            state: SchemaState,
            elements: u64,
            time: Duration,
        }

        // One embedder for the whole pool (hash strategy): workers share it
        // by reference instead of rebuilding per chunk.
        let shared = self.shared_embedder();
        let shared_ref = shared.as_deref();

        let (work_tx, work_rx) = mpsc::sync_channel::<(usize, PropertyGraph)>(threads);
        let work_rx = Arc::new(Mutex::new(work_rx));
        // The result channel is bounded: if the folding thread lags, workers
        // block here instead of piling finished states up without limit.
        let (res_tx, res_rx) = mpsc::sync_channel::<(usize, ChunkOutcome)>(threads * 4);

        // Per-chunk accounting indexed by input position (results arrive in
        // completion order; the schema itself is order-insensitive).
        let mut per_chunk: Vec<Option<(u64, Duration)>> = Vec::new();
        let mut merged = 0usize;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                scope.spawn(move || loop {
                    // Hold the lock only while popping — processing runs
                    // unlocked so workers overlap.
                    let job = work_rx.lock().expect("stream worker queue lock").recv();
                    let Ok((idx, chunk)) = job else { return };
                    let t = Instant::now();
                    let elements = (chunk.node_count() + chunk.edge_count()) as u64;
                    let chunk_state = self.chunk_state_cached(&chunk, shared_ref, cache);
                    // Free the chunk before a potentially blocking send on
                    // the bounded result channel.
                    drop(chunk);
                    let outcome = ChunkOutcome {
                        state: chunk_state,
                        elements,
                        time: t.elapsed(),
                    };
                    if res_tx.send((idx, outcome)).is_err() {
                        return;
                    }
                });
            }
            // Only workers may hold receiving halves now: when every worker
            // exits (normally or by panic) the dispatch send below fails
            // instead of blocking forever.
            drop(work_rx);
            drop(res_tx);

            let mut dispatched = 0usize;
            let fold = |state: &mut SchemaState,
                        per_chunk: &mut Vec<Option<(u64, Duration)>>,
                        merged: &mut usize,
                        (idx, outcome): (usize, ChunkOutcome)| {
                // Commutative absorb: fold in completion order, no reorder
                // buffer needed.
                state.merge(outcome.state);
                if per_chunk.len() <= idx {
                    per_chunk.resize(idx + 1, None);
                }
                per_chunk[idx] = Some((outcome.elements, outcome.time));
                *merged += 1;
            };
            for chunk in chunks {
                // Dispatch with backpressure: when the work queue is full
                // (workers may themselves be blocked on the full result
                // channel), fold a finished result to make progress instead
                // of blocking in `send` — that would deadlock now that both
                // channels are bounded.
                let mut job = Some((dispatched, chunk));
                while let Some(j) = job.take() {
                    match work_tx.try_send(j) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(j)) => {
                            job = Some(j);
                            let r = res_rx
                                .recv()
                                .expect("streaming worker pool terminated unexpectedly");
                            fold(state, &mut per_chunk, &mut merged, r);
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            panic!("streaming worker pool terminated unexpectedly")
                        }
                    }
                }
                dispatched += 1;
                // Opportunistically fold finished chunks while dispatching.
                while let Ok(r) = res_rx.try_recv() {
                    fold(state, &mut per_chunk, &mut merged, r);
                }
            }
            drop(work_tx); // signal end of work; workers drain and exit
            while let Ok(r) = res_rx.recv() {
                fold(state, &mut per_chunk, &mut merged, r);
            }
            assert_eq!(
                merged, dispatched,
                "a streaming worker died before finishing its chunk"
            );
        });

        let mut chunk_times = Vec::with_capacity(per_chunk.len());
        let mut elements = 0u64;
        for slot in per_chunk {
            let (n, time) = slot.expect("every dispatched chunk was folded");
            chunk_times.push(time);
            elements += n;
        }
        AbsorbReport {
            elements,
            chunk_times,
        }
    }

    /// Fresh [`SchemaState`] carrying this discoverer's θ — the accumulator
    /// every streaming and watch path folds chunk states into.
    pub fn new_state(&self) -> SchemaState {
        SchemaState::new(self.config.theta)
    }

    /// Resume a streaming discovery from a previously persisted state (see
    /// [`crate::snapshot`]): verify the loaded state is compatible with
    /// this discoverer's configuration, absorb the remaining chunks into
    /// it with `threads` workers, and finalize. Because snapshot
    /// persistence is lossless and absorption is associative and
    /// commutative, a run cut at any chunk boundary, saved, reloaded, and
    /// resumed through this method finalizes **byte-identically** to the
    /// uninterrupted run (`tests/tests/snapshot_resume.rs` proptests this
    /// across formats and thread counts).
    ///
    /// The state is borrowed mutably, not consumed, so a caller that wants
    /// to checkpoint again after the pass (e.g. `discover --save-state`)
    /// still owns it; [`SchemaState::finalize`] is non-consuming.
    ///
    /// # Errors
    /// [`SnapshotError::Incompatible`] when the loaded state's θ differs
    /// from this discoverer's — absorbing under a different merge
    /// threshold would produce a schema no single-config run could have
    /// produced. (Method/seed/chunk-size guards live in
    /// [`crate::snapshot::SnapshotConfig::ensure_matches`], which callers
    /// holding a full [`crate::snapshot::ResumeContext`] should apply
    /// first.)
    pub fn resume_stream<I>(
        &self,
        state: &mut SchemaState,
        chunks: I,
        threads: usize,
    ) -> Result<StreamResult, SnapshotError>
    where
        I: IntoIterator<Item = PropertyGraph>,
    {
        if state.theta().to_bits() != self.config.theta.to_bits() {
            return Err(SnapshotError::Incompatible {
                field: "theta",
                saved: state.theta().to_string(),
                requested: self.config.theta.to_string(),
            });
        }
        let report = self.absorb_stream(chunks, state, threads);
        Ok(StreamResult {
            schema: state.finalize(),
            chunk_times: report.chunk_times,
            elements: report.elements,
        })
    }

    /// Sharded discovery over a [`MultiSource`] — the merge-tree run.
    ///
    /// The entry list is balanced by byte length (LPT) across `shards`
    /// partitions ([`MultiSource::partition`]); each
    /// shard reads **its files one at a time with a fresh reader** (fresh
    /// registry, so a file's chunk boundaries depend only on that file and
    /// the chunk size, never on which shard it landed on) and folds the
    /// per-file states with the associative+commutative
    /// [`SchemaState::merge`]. Shards run on their own threads, each with
    /// `threads` chunk workers ([`Self::absorb_stream`]); shard states then
    /// fold pairwise up a merge tree. Because every per-file state is
    /// partition-invariant and the fold is order-insensitive,
    /// `discover_sharded(src, n, ..)` finalizes **byte-identically** to
    /// `discover_sharded(src, 1, ..)` — the serial single-state run — for
    /// every shard count.
    ///
    /// Cross-file edges (an edge in one file whose endpoint node only some
    /// other file declares) are carried out of each reader
    /// ([`ChunkedTextReader::take_pending`]) and resolved at the root
    /// against the merged registry, batched per edge signature on
    /// distinct stub pairs ([`Self::resolve_pending`]), so each
    /// contributes cardinality 1:1 and an endpoint-label pair no matter
    /// when or where it resolves — which is what makes split
    /// `--save-state` runs merged later with `merge-state` equal to the
    /// one-shot run. Edges whose endpoints no
    /// input declares stay in [`ShardedResult::pending`] (and count as
    /// unresolved warnings).
    ///
    /// Node ids are expected to be unique across the whole tree; a
    /// duplicate id re-declared by another file counts toward
    /// `duplicate_nodes` and the later-merged binding wins for stub labels.
    pub fn discover_sharded(
        &self,
        source: &MultiSource,
        shards: usize,
        chunk_size: usize,
        threads: usize,
    ) -> Result<ShardedResult, StreamError> {
        let shards = shards.max(1);
        let parts = source.partition(shards);
        let outcomes: Vec<Result<ShardOutcome, StreamError>> = if shards == 1 {
            vec![self.run_shard(&parts[0], chunk_size, threads)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .iter()
                    .map(|part| scope.spawn(move || self.run_shard(part, chunk_size, threads)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
        };
        let mut folds: Vec<ShardOutcome> = outcomes.into_iter().collect::<Result<_, _>>()?;
        // Hierarchical fold: merge adjacent pairs until one state remains.
        // Any tree shape would finalize identically; pairwise rounds keep
        // each merge between states of similar size.
        while folds.len() > 1 {
            let mut next = Vec::with_capacity(folds.len().div_ceil(2));
            let mut iter = folds.into_iter();
            while let Some(mut left) = iter.next() {
                if let Some(right) = iter.next() {
                    left.absorb(right);
                }
                next.push(left);
            }
            folds = next;
        }
        let mut root = folds.pop().expect("at least one shard");
        let (pending, resolved) =
            self.resolve_pending(&mut root.state, &root.registry, root.pending);
        root.elements += resolved;
        root.warnings.unresolved_edges += pending.len() as u64;
        Ok(ShardedResult {
            state: root.state,
            registry: root.registry,
            pending,
            warnings: root.warnings,
            elements: root.elements,
            inputs: root.inputs,
        })
    }

    /// One shard's serial fold over its file partition.
    fn run_shard(
        &self,
        entries: &[SourceEntry],
        chunk_size: usize,
        threads: usize,
    ) -> Result<ShardOutcome, StreamError> {
        let mut out = ShardOutcome {
            state: self.new_state(),
            registry: LabelSetRegistry::default(),
            warnings: StreamWarnings::default(),
            pending: Vec::new(),
            elements: 0,
            inputs: 0,
        };
        for entry in entries {
            let mut reader = ChunkedTextReader::new(entry.open()?, chunk_size);
            reader.set_carry_unresolved(true);
            let mut err = None;
            let report = self.absorb_stream(
                std::iter::from_fn(|| match reader.next_chunk() {
                    Ok(c) => c,
                    Err(e) => {
                        err = Some(e);
                        None
                    }
                }),
                &mut out.state,
                threads,
            );
            if let Some(e) = err {
                return Err(e);
            }
            out.elements += report.elements;
            // Order matters: extract carried edges before the warning
            // counters, so they are not double-counted as unresolved.
            out.pending.extend(reader.take_pending());
            out.warnings.absorb(&reader.warnings());
            out.warnings.duplicate_nodes += out.registry.merge(&reader.into_registry());
            out.inputs += 1;
        }
        Ok(out)
    }

    /// Resolve carried cross-file edges against a (merged) registry,
    /// **batched per edge signature**: edges are grouped by their full
    /// signature — (source label set, target label set, edge labels,
    /// property key set) — and each group is absorbed as **one**
    /// mini-graph holding every edge of the group on its own stub pair.
    ///
    /// Grouping this way is byte-identical to the per-edge resolution it
    /// replaces ([`Self::resolve_pending_reference`], proptested in
    /// `tests/`): same-signature edges dedup to a single representation
    /// row, so the group clusters into exactly one candidate whose summed
    /// counts, unioned endpoints, and joined property kinds equal the
    /// pooled result of absorbing each edge alone — the same invariance
    /// that already makes streaming equal across chunk sizes. Distinct
    /// stub pairs keep every endpoint at degree 1, preserving each edge's
    /// 1:1 cardinality contribution. Grouping by endpoint pair alone
    /// would *not* be sound: LSH may merge distinct signatures that share
    /// endpoints into one cluster, producing a unioned candidate no
    /// per-edge run pools.
    ///
    /// The win: root resolution cost drops from one full mini-pipeline
    /// per carried edge to one per **distinct signature** — and carried
    /// cross-file edges are exactly the workload where a handful of
    /// signatures covers thousands of edges.
    ///
    /// Returns the still-unresolvable records and the number resolved.
    pub fn resolve_pending(
        &self,
        state: &mut SchemaState,
        registry: &LabelSetRegistry,
        pending: Vec<Record>,
    ) -> (Vec<Record>, u64) {
        let shared = self.shared_embedder();
        let mut unresolved = Vec::new();
        let mut resolved = 0u64;
        // (src labels, tgt labels, edge labels, sorted prop keys) → the
        // group's per-edge property lists. BTreeMap for deterministic
        // iteration (the fold is commutative, so this is cosmetic).
        type GroupKey = (Vec<String>, Vec<String>, Vec<String>, Vec<String>);
        let mut groups: BTreeMap<GroupKey, Vec<Vec<(String, pg_hive_graph::Value)>>> =
            BTreeMap::new();
        for rec in pending {
            let Record::Edge {
                src,
                tgt,
                labels,
                props,
            } = rec
            else {
                continue;
            };
            let (Some(src_ls), Some(tgt_ls)) = (registry.label_set(&src), registry.label_set(&tgt))
            else {
                unresolved.push(Record::Edge {
                    src,
                    tgt,
                    labels,
                    props,
                });
                continue;
            };
            let mut keys: Vec<String> = props.iter().map(|(k, _)| k.clone()).collect();
            keys.sort_unstable();
            let key = (src_ls.to_vec(), tgt_ls.to_vec(), labels, keys);
            groups.entry(key).or_default().push(props);
        }
        for ((src_labels, tgt_labels, edge_labels, _), edges) in groups {
            let mut b = GraphBuilder::new();
            let src_labels: Vec<&str> = src_labels.iter().map(String::as_str).collect();
            let tgt_labels: Vec<&str> = tgt_labels.iter().map(String::as_str).collect();
            let edge_labels: Vec<&str> = edge_labels.iter().map(String::as_str).collect();
            resolved += edges.len() as u64;
            for props in edges {
                let s = b.add_stub_node(&src_labels);
                let t = b.add_stub_node(&tgt_labels);
                let edge_props: Vec<(&str, pg_hive_graph::Value)> =
                    props.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                b.add_edge(s, t, &edge_labels, &edge_props);
            }
            let g = b.finish();
            state.merge(self.chunk_state_with(&g, shared.as_deref()));
        }
        (unresolved, resolved)
    }

    /// The per-edge resolution [`Self::resolve_pending`] batches: every
    /// resolvable edge is absorbed in its own two-stub mini-graph. Kept as
    /// the **equality oracle** for the batched path — the equivalence
    /// suite asserts both produce byte-identical finalized schemas on
    /// random pending sets.
    pub fn resolve_pending_reference(
        &self,
        state: &mut SchemaState,
        registry: &LabelSetRegistry,
        pending: Vec<Record>,
    ) -> (Vec<Record>, u64) {
        let shared = self.shared_embedder();
        let mut unresolved = Vec::new();
        let mut resolved = 0u64;
        for rec in pending {
            let Record::Edge {
                src,
                tgt,
                labels,
                props,
            } = rec
            else {
                continue;
            };
            let (Some(src_ls), Some(tgt_ls)) = (registry.label_set(&src), registry.label_set(&tgt))
            else {
                unresolved.push(Record::Edge {
                    src,
                    tgt,
                    labels,
                    props,
                });
                continue;
            };
            let mut b = GraphBuilder::new();
            let src_labels: Vec<&str> = src_ls.iter().map(String::as_str).collect();
            let tgt_labels: Vec<&str> = tgt_ls.iter().map(String::as_str).collect();
            let s = b.add_stub_node(&src_labels);
            let t = b.add_stub_node(&tgt_labels);
            let edge_labels: Vec<&str> = labels.iter().map(String::as_str).collect();
            let edge_props: Vec<(&str, pg_hive_graph::Value)> =
                props.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            b.add_edge(s, t, &edge_labels, &edge_props);
            let g = b.finish();
            state.merge(self.chunk_state_with(&g, shared.as_deref()));
            resolved += 1;
        }
        (unresolved, resolved)
    }

    /// One independent chunk's full pipeline pass — preprocess, LSH
    /// clustering, type extraction, post-processing — into a chunk-local
    /// [`SchemaState`] with member lists cleared (they hold chunk-local ids
    /// that die with the chunk). Merge the results with
    /// [`SchemaState::merge`] in any order.
    pub fn discover_chunk_state(&self, chunk: &PropertyGraph) -> SchemaState {
        self.chunk_state_with(chunk, self.shared_embedder().as_deref())
    }

    fn chunk_state_with(
        &self,
        g: &PropertyGraph,
        shared: Option<&dyn LabelEmbedder>,
    ) -> SchemaState {
        self.chunk_state_cached(g, shared, None)
    }

    /// One chunk's pipeline pass, optionally memoized through a
    /// [`SignatureCache`]. On a cache hit only the cheap signature scan
    /// runs — no embedding, no matrix, no LSH — and the cached
    /// distinct-level clustering is broadcast through the scan's `rep_of`.
    /// The cache engages only on the dedup path (the naive path produces
    /// no distinct-level clustering to reuse).
    fn chunk_state_cached(
        &self,
        g: &PropertyGraph,
        shared: Option<&dyn LabelEmbedder>,
        cache: Option<&SignatureCache>,
    ) -> SchemaState {
        // Stub endpoints exist only so cross-chunk edges keep their endpoint
        // label sets — the real node is counted in whichever chunk declares
        // it. Excluding stubs here makes streamed instance counts and
        // property statistics *exact* (identical to the resident run) for
        // every chunk size and shard partition.
        let batch = GraphBatch {
            nodes: g
                .nodes()
                .filter(|&(id, _)| !g.is_stub(id))
                .map(|(id, _)| id)
                .collect(),
            edges: g.edges().map(|(id, _)| id).collect(),
        };
        let cache = cache.filter(|_| self.config.dedup);
        let scan = cache.map(|_| signature_scan(g, &batch));
        if let (Some(cache), Some(scan)) = (cache, scan.as_ref()) {
            if let Some(hit) =
                cache.lookup(scan.fingerprint, scan.nodes.distinct, scan.edges.distinct)
            {
                return self.absorb_chunk_clusterings(
                    g,
                    &batch,
                    &hit.nodes.broadcast(&scan.nodes.rep_of),
                    &hit.edges.broadcast(&scan.edges.rep_of),
                );
            }
        }
        let owned;
        let embedder: &dyn LabelEmbedder = match shared {
            Some(e) => e,
            None => {
                owned = self.make_embedder(g, &batch);
                owned.as_ref()
            }
        };
        let nodes = node_representations(g, &batch.nodes, embedder, self.config.label_weight);
        let edges = edge_representations(g, &batch.edges, embedder, self.config.label_weight);
        let node_out = cluster_elements(&nodes.repr, ElementClass::Nodes, &self.config);
        let edge_out = cluster_elements(&edges.repr, ElementClass::Edges, &self.config);
        if let (Some(cache), Some(scan)) = (cache, scan) {
            if let (Some(n), Some(e)) = (node_out.distinct, edge_out.distinct) {
                cache.insert(scan.fingerprint, CachedChunk { nodes: n, edges: e });
            }
        }
        self.absorb_chunk_clusterings(g, &batch, &node_out.clustering, &edge_out.clustering)
    }

    /// Stages (d)–(g) of one chunk given its clusterings — shared by the
    /// cached and computed paths of [`Self::chunk_state_cached`].
    fn absorb_chunk_clusterings(
        &self,
        g: &PropertyGraph,
        batch: &GraphBatch,
        node_clustering: &Clustering,
        edge_clustering: &Clustering,
    ) -> SchemaState {
        let mut state = self.new_state();
        state.absorb_node_candidates(candidate_node_types(g, &batch.nodes, node_clustering));
        state.absorb_edge_candidates(candidate_edge_types(g, &batch.edges, edge_clustering));
        // Streaming chunks cannot defer post-processing: the values die
        // with the chunk.
        state.postprocess(g, self.config.datatype_sampling.as_ref());
        state.clear_members();
        state
    }

    /// The batch-independent embedder shared across a whole run, when the
    /// strategy allows it. `None` for Word2Vec, which trains on each
    /// batch's label sentences.
    fn shared_embedder(&self) -> Option<Box<dyn LabelEmbedder>> {
        match &self.config.embedding {
            EmbeddingStrategy::Hash => Some(Box::new(HashEmbedder::new(
                self.config.embedding_dim,
                self.config.seed,
            ))),
            EmbeddingStrategy::Word2Vec(_) => None,
        }
    }

    fn make_embedder(&self, g: &PropertyGraph, batch: &GraphBatch) -> Box<dyn LabelEmbedder> {
        match &self.config.embedding {
            EmbeddingStrategy::Hash => Box::new(HashEmbedder::new(
                self.config.embedding_dim,
                self.config.seed,
            )),
            EmbeddingStrategy::Word2Vec(cfg) => {
                let sentences = label_sentences(g, batch);
                let cfg = pg_hive_embed::Word2VecConfig {
                    dim: self.config.embedding_dim,
                    seed: self.config.seed,
                    ..cfg.clone()
                };
                Box::new(Word2Vec::train(&sentences, &cfg))
            }
        }
    }
}

/// Add a batch's cluster count onto the running global cluster-id offset.
/// Per-element ids are `offset + local_id` with `local_id < num_clusters`,
/// so checking `offset + num_clusters` up front guarantees every id of the
/// batch fits in `u32` without wrapping.
///
/// # Panics
/// Panics with a diagnosable message when the global cluster-id space
/// exceeds `u32::MAX` — at that point `node_cluster_assignment` could no
/// longer distinguish clusters and every downstream F1* score would be
/// silently wrong.
fn advance_cluster_offset(offset: u32, num_clusters: usize, class: &str) -> u32 {
    u32::try_from(num_clusters)
        .ok()
        .and_then(|n| offset.checked_add(n))
        .unwrap_or_else(|| {
            panic!(
                "global {class} cluster-id space overflowed u32 \
                 (offset {offset} + {num_clusters} clusters in this batch); \
                 run with fewer batches or a coarser clustering"
            )
        })
}

/// Derive element→type assignments from type membership lists. Every
/// element covered by a processed batch belongs to exactly one type (type
/// completeness, §4.7); elements of batches that have not been processed
/// yet (when the caller streams a prefix) keep the `u32::MAX` sentinel.
fn assignments(g: &PropertyGraph, schema: &SchemaGraph) -> (Vec<u32>, Vec<u32>) {
    let mut node_assignment = vec![u32::MAX; g.node_count()];
    for (t, ty) in schema.node_types.iter().enumerate() {
        for &m in &ty.members {
            node_assignment[m as usize] = t as u32;
        }
    }
    let mut edge_assignment = vec![u32::MAX; g.edge_count()];
    for (t, ty) in schema.edge_types.iter().enumerate() {
        for &m in &ty.members {
            edge_assignment[m as usize] = t as u32;
        }
    }
    (node_assignment, edge_assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterMethod, SamplingConfig};
    use crate::schema::label_set;
    use pg_hive_graph::{GraphBuilder, Value, ValueKind};

    /// The Figure 1 graph: 4 node types (+1 unlabeled Person), 4 edge types.
    fn figure1() -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let bob = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("Bob")),
                ("gender", Value::from("male")),
                ("bday", Value::from("1980-05-02")),
            ],
        );
        let alice = b.add_node(
            &[],
            &[
                ("name", Value::from("Alice")),
                ("gender", Value::from("female")),
                ("bday", Value::from("1999-12-19")),
            ],
        );
        let john = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("John")),
                ("gender", Value::from("male")),
                ("bday", Value::from("2005-09-24")),
            ],
        );
        let post1 = b.add_node(&["Post"], &[("imgFile", Value::from("screenshot.png"))]);
        let post2 = b.add_node(&["Post"], &[("content", Value::from("bazinga!"))]);
        let org = b.add_node(
            &["Org"],
            &[
                ("url", Value::from("example.com")),
                ("name", Value::from("Example")),
            ],
        );
        let place = b.add_node(&["Place"], &[("name", Value::from("Greece"))]);
        b.add_edge(alice, john, &["KNOWS"], &[]);
        b.add_edge(
            bob,
            john,
            &["KNOWS"],
            &[("since", Value::from("2025-01-01"))],
        );
        b.add_edge(alice, post2, &["LIKES"], &[]);
        b.add_edge(john, post1, &["LIKES"], &[]);
        b.add_edge(bob, org, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        b.add_edge(org, place, &["LOCATED_IN"], &[]);
        b.add_edge(john, place, &["LOCATED_IN"], &[("from", Value::Int(2025))]);
        b.finish()
    }

    #[test]
    fn discovers_figure1_schema_with_elsh() {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let r = d.discover(&figure1());
        // Example 5: Alice's unlabeled cluster merges into Person; the two
        // Post patterns merge by label. Expect exactly Person, Post, Org,
        // Place.
        let labels: Vec<String> = r
            .schema
            .node_types
            .iter()
            .map(|t| t.labels.iter().cloned().collect::<Vec<_>>().join("|"))
            .collect();
        assert_eq!(r.schema.node_types.len(), 4, "{labels:?}");
        let person_idx = r
            .schema
            .node_type_by_labels(&label_set(&["Person"]))
            .expect("Person type");
        assert_eq!(
            r.schema.node_types[person_idx].instance_count, 3,
            "Bob, John and unlabeled Alice"
        );
        // Edge types: KNOWS, LIKES, WORKS_AT, LOCATED_IN.
        assert_eq!(r.schema.edge_types.len(), 4);
        // Every element is assigned.
        assert_eq!(r.node_assignment.len(), 7);
        assert_eq!(r.edge_assignment.len(), 7);
    }

    #[test]
    fn discovers_figure1_schema_with_minhash() {
        let d = Discoverer::new(PipelineConfig::minhash_default());
        let r = d.discover(&figure1());
        assert!(
            r.schema.node_types.len() <= 5 && r.schema.node_types.len() >= 4,
            "got {}",
            r.schema.node_types.len()
        );
        assert_eq!(r.schema.edge_types.len(), 4);
    }

    #[test]
    fn post_processing_fills_constraints_datatypes_cardinalities() {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let r = d.discover(&figure1());
        let person_idx = r
            .schema
            .node_type_by_labels(&label_set(&["Person"]))
            .unwrap();
        let person = &r.schema.node_types[person_idx];
        // Example 6: name/gender/bday mandatory for Person.
        for key in ["name", "gender", "bday"] {
            assert!(
                person.props[key].is_mandatory(person.instance_count),
                "{key} should be mandatory"
            );
        }
        // Example 7: name/gender strings, bday a date.
        assert_eq!(person.props["name"].kind, Some(ValueKind::String));
        assert_eq!(person.props["bday"].kind, Some(ValueKind::Date));
        // Post: imgFile optional (only one of the two posts has it).
        let post_idx = r.schema.node_type_by_labels(&label_set(&["Post"])).unwrap();
        let post = &r.schema.node_types[post_idx];
        assert!(!post.props["imgFile"].is_mandatory(post.instance_count));
        // Example 8: KNOWS is M:N... with only 2 KNOWS edges sharing target
        // John, max_in = 2, max_out = 1 ⇒ 0:N on this tiny graph.
        let knows_idx = r
            .schema
            .edge_type_by_labels(&label_set(&["KNOWS"]))
            .unwrap();
        let c = r.schema.edge_types[knows_idx].cardinality.unwrap();
        assert_eq!(c.max_in, 2);
    }

    #[test]
    fn incremental_equals_static_type_inventory() {
        let g = figure1();
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let stat = d.discover(&g);
        let incr = d.discover_incremental(&g, 3);
        let mut a: Vec<_> = stat
            .schema
            .node_types
            .iter()
            .map(|t| t.labels.clone())
            .collect();
        let mut b: Vec<_> = incr
            .schema
            .node_types
            .iter()
            .map(|t| t.labels.clone())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "incremental discovers the same labeled types");
        assert_eq!(incr.stats.batch_times.len(), 3);
        // All instances accounted for in both runs.
        assert_eq!(incr.schema.node_instances(), 7);
        assert_eq!(incr.schema.edge_instances(), 7);
    }

    #[test]
    fn word2vec_embedding_path_works() {
        let cfg = PipelineConfig {
            embedding: crate::config::EmbeddingStrategy::Word2Vec(Default::default()),
            embedding_dim: 8,
            ..PipelineConfig::elsh_adaptive()
        };
        let d = Discoverer::new(cfg);
        let r = d.discover(&figure1());
        assert!(r.schema.node_types.len() >= 4);
        assert_eq!(r.schema.edge_types.len(), 4);
    }

    #[test]
    fn sampling_config_is_honored() {
        let cfg = PipelineConfig {
            datatype_sampling: Some(SamplingConfig::default()),
            ..PipelineConfig::elsh_adaptive()
        };
        let d = Discoverer::new(cfg);
        let r = d.discover(&figure1());
        // Small graph: floor 1000 ⇒ identical to full scan.
        let person_idx = r
            .schema
            .node_type_by_labels(&label_set(&["Person"]))
            .unwrap();
        assert_eq!(
            r.schema.node_types[person_idx].props["bday"].kind,
            Some(ValueKind::Date)
        );
    }

    #[test]
    fn empty_graph_gives_empty_schema() {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let r = d.discover(&PropertyGraph::new());
        assert!(r.schema.node_types.is_empty());
        assert!(r.schema.edge_types.is_empty());
        assert!(r.node_assignment.is_empty());
    }

    #[test]
    fn timings_are_recorded() {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let r = d.discover(&figure1());
        assert!(r.stats.timings.total() >= r.stats.timings.discovery());
        assert_eq!(r.stats.batch_times.len(), 1);
        assert!(r.stats.node_clusters >= 4);
    }

    #[test]
    fn cluster_offsets_advance_checked() {
        assert_eq!(advance_cluster_offset(10, 5, "node"), 15);
        assert_eq!(advance_cluster_offset(u32::MAX - 1, 1, "node"), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "cluster-id space overflowed u32")]
    fn cluster_offset_overflow_panics_with_context() {
        // Regression: the seed accumulated offsets with an unchecked
        // `as u32` cast, so overflow wrapped silently and corrupted
        // `node_cluster_assignment` instead of failing loudly.
        advance_cluster_offset(u32::MAX - 1, 2, "node");
    }

    #[test]
    #[should_panic(expected = "cluster-id space overflowed u32")]
    fn cluster_count_beyond_u32_panics_with_context() {
        advance_cluster_offset(0, u32::MAX as usize + 1, "edge");
    }

    #[test]
    fn parallel_stream_is_byte_identical_to_serial() {
        use pg_hive_graph::loader::save_text;
        use pg_hive_graph::stream::pgt::PgtSource;
        use pg_hive_graph::ChunkedTextReader;
        let text = save_text(&figure1());
        let chunks = |size: usize| {
            let mut r = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), size);
            let mut out = Vec::new();
            while let Some(c) = r.next_chunk().unwrap() {
                out.push(c);
            }
            out
        };
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        for size in [3, 5, 100] {
            let serial = d.discover_stream(chunks(size));
            let serial_text = crate::serialize::pg_schema_strict(&serial.schema, "G");
            for threads in [2, 3, 4] {
                let par = d.discover_stream_parallel(chunks(size), threads);
                assert_eq!(par.elements, serial.elements, "size {size} x{threads}");
                assert_eq!(par.chunk_times.len(), serial.chunk_times.len());
                assert_eq!(
                    crate::serialize::pg_schema_strict(&par.schema, "G"),
                    serial_text,
                    "size {size} x{threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_stream_with_one_thread_or_no_chunks_degrades_gracefully() {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let one = d.discover_stream_parallel(vec![figure1()], 1);
        assert_eq!(one.chunk_times.len(), 1);
        assert_eq!(one.elements, 14);
        let none = d.discover_stream_parallel(Vec::new(), 4);
        assert_eq!(none.elements, 0);
        assert!(none.schema.node_types.is_empty());
        // More threads than chunks is fine — idle workers just exit.
        let few = d.discover_stream_parallel(vec![figure1()], 8);
        assert_eq!(few.elements, 14);
        assert_eq!(few.schema.node_types.len(), 4);
    }

    #[test]
    fn sharded_directory_run_is_byte_identical_to_serial() {
        use std::fs;
        let root =
            std::env::temp_dir().join(format!("pg-hive-sharded-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        // Mixed formats with cross-file edges: people in the .pgt, orgs in
        // the CSV dataset, employment in the .jsonl referencing both.
        fs::write(
            root.join("people.pgt"),
            "N p1 Person name=Ann\nN p2 Person name=Bob\nE p1 p2 KNOWS since=2020\n",
        )
        .unwrap();
        let csvdir = root.join("orgs");
        fs::create_dir_all(&csvdir).unwrap();
        fs::write(
            csvdir.join("nodes.csv"),
            "id,labels,url\no1,Org,example.com\no2,Org,example.org\n",
        )
        .unwrap();
        fs::write(
            root.join("jobs.jsonl"),
            concat!(
                r#"{"type":"edge","src":"p1","tgt":"o1","labels":["WORKS_AT"],"props":{"from":2019}}"#,
                "\n",
                r#"{"type":"edge","src":"p2","tgt":"o2","labels":["WORKS_AT"],"props":{"from":2021}}"#,
                "\n",
                r#"{"type":"edge","src":"p2","tgt":"ghost","labels":["WORKS_AT"],"props":{}}"#,
                "\n",
            ),
        )
        .unwrap();

        let source = MultiSource::enumerate(&root).unwrap();
        assert_eq!(source.len(), 3);
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let serial = d.discover_sharded(&source, 1, 2, 1).unwrap();
        let serial_text = crate::serialize::pg_schema_strict(&serial.state.finalize(), "G");
        assert_eq!(serial.inputs, 3);
        // The ghost-endpoint edge stays pending and is counted unresolved.
        assert_eq!(serial.pending.len(), 1);
        assert_eq!(serial.warnings.unresolved_edges, 1);
        // Cross-file WORKS_AT edges resolved against the merged registry.
        assert!(serial_text.contains("WORKS_AT"), "{serial_text}");
        for shards in [2, 3, 4, 7] {
            for threads in [1, 2] {
                let sharded = d.discover_sharded(&source, shards, 2, threads).unwrap();
                assert_eq!(
                    crate::serialize::pg_schema_strict(&sharded.state.finalize(), "G"),
                    serial_text,
                    "shards {shards} threads {threads}"
                );
                assert_eq!(sharded.elements, serial.elements, "shards {shards}");
                assert_eq!(sharded.warnings, serial.warnings, "shards {shards}");
                assert_eq!(sharded.pending.len(), 1);
            }
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn split_runs_merged_equal_one_shot() {
        use crate::snapshot::{ResumeContext, Snapshot, SnapshotConfig};
        use std::fs;
        let root = std::env::temp_dir().join(format!("pg-hive-merge-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let people = "N p1 Person name=Ann\nN p2 Person name=Bob\nE p1 p2 KNOWS since=2020\n";
        let orgs = "N o1 Org url=example.com\nN o2 Org url=example.org\n";
        // Cross-split edges: their endpoints live in the *other* run.
        let jobs = "E p1 o1 WORKS_AT from=2019\nE p2 o2 WORKS_AT from=2021\n";
        for (dir, files) in [
            (
                "all",
                vec![("a.pgt", people), ("b.pgt", orgs), ("c.pgt", jobs)],
            ),
            ("left", vec![("a.pgt", people)]),
            ("right", vec![("b.pgt", orgs), ("c.pgt", jobs)]),
        ] {
            fs::create_dir_all(root.join(dir)).unwrap();
            for (name, text) in files {
                fs::write(root.join(dir).join(name), text).unwrap();
            }
        }
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let chunk = 2;
        let run = |dir: &str| {
            let src = MultiSource::enumerate(&root.join(dir)).unwrap();
            d.discover_sharded(&src, 1, chunk, 1).unwrap()
        };
        let one_shot = run("all");
        let one_shot_text = crate::serialize::pg_schema_strict(&one_shot.state.finalize(), "G");
        assert!(one_shot.pending.is_empty());

        // Save each half as a snapshot file, merge, resolve, finalize.
        let mut paths = Vec::new();
        for half in ["left", "right"] {
            let r = run(half);
            let ctx = ResumeContext {
                config: SnapshotConfig::new(d.config(), chunk),
                state: r.state,
                registry: r.registry,
                watch: None,
                pending: r.pending,
            };
            let path = root.join(format!("{half}.snapshot"));
            ctx.save(&path).unwrap();
            paths.push(path);
        }
        let (mut merged, collisions) = Snapshot::merge_files(&paths).unwrap();
        assert_eq!(collisions, 0);
        // The WORKS_AT edges were pending in the right half (their Person
        // endpoints live in the left half) and resolve only now.
        assert_eq!(merged.pending.len(), 2);
        let (left_over, resolved) =
            d.resolve_pending(&mut merged.state, &merged.registry, merged.pending);
        assert_eq!((left_over.len(), resolved), (0, 2));
        assert_eq!(
            crate::serialize::pg_schema_strict(&merged.state.finalize(), "G"),
            one_shot_text
        );
        // Merge order must not matter either.
        let rev: Vec<_> = paths.iter().rev().collect();
        let (mut merged_rev, _) = Snapshot::merge_files(&rev).unwrap();
        let pending = std::mem::take(&mut merged_rev.pending);
        d.resolve_pending(&mut merged_rev.state, &merged_rev.registry, pending);
        assert_eq!(
            crate::serialize::pg_schema_strict(&merged_rev.state.finalize(), "G"),
            one_shot_text
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cached_stream_is_byte_identical_and_hits_on_repeats() {
        use pg_hive_graph::loader::save_text;
        use pg_hive_graph::stream::pgt::PgtSource;
        use pg_hive_graph::ChunkedTextReader;
        let text = save_text(&figure1());
        let chunks = |size: usize| {
            let mut r = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), size);
            let mut out = Vec::new();
            while let Some(c) = r.next_chunk().unwrap() {
                out.push(c);
            }
            out
        };
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        for size in [3, 100] {
            let mut plain = d.new_state();
            d.absorb_stream(chunks(size), &mut plain, 1);
            let plain_text = crate::serialize::pg_schema_strict(&plain.finalize(), "G");
            for threads in [1, 3] {
                let cache = SignatureCache::default();
                let mut cold = d.new_state();
                d.absorb_stream_cached(chunks(size), &mut cold, threads, &cache);
                assert_eq!(
                    crate::serialize::pg_schema_strict(&cold.finalize(), "G"),
                    plain_text,
                    "cold cached run, size {size} x{threads}"
                );
                let misses = cache.stats().misses;
                assert_eq!(cache.stats().hits, 0, "cold run cannot hit");
                assert!(misses > 0);
                // Second pass over identical chunks: every lookup hits and
                // the schema is still byte-identical.
                let mut warm = d.new_state();
                d.absorb_stream_cached(chunks(size), &mut warm, threads, &cache);
                assert_eq!(
                    crate::serialize::pg_schema_strict(&warm.finalize(), "G"),
                    plain_text,
                    "warm cached run, size {size} x{threads}"
                );
                let stats = cache.stats();
                assert_eq!(
                    (stats.hits, stats.misses),
                    (misses, misses),
                    "warm pass hits every chunk"
                );
            }
        }
    }

    #[test]
    fn both_methods_deterministic_per_seed() {
        let g = figure1();
        for method in [ClusterMethod::Elsh, ClusterMethod::MinHash] {
            let cfg = PipelineConfig {
                method,
                ..PipelineConfig::elsh_adaptive()
            };
            let d = Discoverer::new(cfg);
            let a = d.discover(&g);
            let b = d.discover(&g);
            assert_eq!(a.node_assignment, b.node_assignment);
            assert_eq!(a.edge_assignment, b.edge_assignment);
        }
    }
}
