//! # pg-hive-core
//!
//! PG-HIVE: **H**ybrid **I**ncremental schema disco**VE**ry for **P**roperty
//! **G**raphs — a from-scratch Rust implementation of the EDBT 2026 paper by
//! Sideri et al.
//!
//! Given a property graph with arbitrary, missing, or noisy labels and
//! properties, PG-HIVE infers a full schema graph: node types, edge types
//! with endpoints, property data types, MANDATORY/OPTIONAL constraints, and
//! edge cardinalities. The pipeline (Fig. 2 of the paper):
//!
//! 1. **Load** nodes/edges from a [`pg_hive_graph::PropertyGraph`].
//! 2. **Preprocess** into hybrid vectors: weighted label embeddings
//!    concatenated with binary property indicators ([`preprocess`]).
//!    Elements are **deduplicated by signature** — (labels, property keys)
//!    for nodes, (labels, endpoint labels, keys) for edges — so each
//!    distinct signature is embedded once into a flat
//!    [`pg_hive_lsh::VectorMatrix`] row and elements carry only a `rep_of`
//!    index (typically 10–100× fewer points downstream).
//! 3. **Cluster** with Euclidean LSH or MinHash ([`cluster`]): LSH hashes
//!    the distinct rows (data-parallel, `pg-hive-lsh`'s `parallel` feature,
//!    on by default) and assignments broadcast back through `rep_of` —
//!    provably the same clustering the per-element sweep produces, and
//!    byte-identical across thread counts for a fixed seed. Set
//!    [`PipelineConfig::dedup`]` = false` to run the naive path.
//! 4. **Extract types** — merge clusters by label, then by property Jaccard
//!    similarity, Algorithm 2 ([`extract`]).
//! 5. **Post-process** — constraints, datatypes, cardinalities
//!    ([`postprocess`]).
//! 6. **Serialize** — PG-Schema LOOSE/STRICT and XSD ([`serialize`]).
//!
//! Batches can be processed **incrementally**
//! ([`Discoverer::discover_incremental`]); schema merging is monotone
//! (Lemmas 1–2), so the schema only ever generalizes — see
//! [`merge::is_generalization_of`]. Every schema-producing path assembles
//! its result through the canonical [`state::SchemaState`] — an associative,
//! commutative absorb over pooled types with a deterministic finalize — so
//! the discovered schema is invariant to interning order and chunk arrival
//! grouping. For datasets that do not fit in memory,
//! [`Discoverer::discover_stream`] folds independent chunks with O(chunk)
//! residency, and [`Discoverer::discover_stream_parallel`] overlaps chunk
//! discovery across a worker pool, folding chunk states in completion order
//! — the result is byte-identical to the serial path for every thread
//! count. [`Discoverer::absorb_stream`] exposes the same engine over a
//! caller-resident state, which is what `pg-hive watch` builds its drift
//! monitoring on. `docs/ARCHITECTURE.md` at the repository root maps the
//! whole system.
//!
//! ## Quickstart
//!
//! ```
//! use pg_hive_core::{Discoverer, PipelineConfig};
//! use pg_hive_graph::{GraphBuilder, Value};
//!
//! let mut b = GraphBuilder::new();
//! let ada = b.add_node(&["Person"], &[("name", Value::from("Ada"))]);
//! let org = b.add_node(&["Org"], &[("url", Value::from("ex.org"))]);
//! b.add_edge(ada, org, &["WORKS_AT"], &[("from", Value::Int(2020))]);
//! let graph = b.finish();
//!
//! let result = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&graph);
//! assert_eq!(result.schema.node_types.len(), 2);
//! assert_eq!(result.schema.edge_types.len(), 1);
//! println!("{}", pg_hive_core::serialize::pg_schema_strict(&result.schema, "Demo"));
//! ```

#![warn(missing_docs)]

pub mod align;
pub mod cluster;
pub mod config;
pub mod diff;
pub mod extract;
pub mod merge;
pub mod parse;
pub mod patterns;
pub mod pipeline;
pub mod postprocess;
pub mod preprocess;
pub mod retract;
pub mod schema;
pub mod serialize;
pub mod serve;
pub mod sigcache;
pub mod snapshot;
pub mod state;
pub mod validate;

pub use config::{ClusterMethod, EmbeddingStrategy, PipelineConfig, SamplingConfig};
pub use diff::{diff_schemas, SchemaDiff};
pub use parse::{parse_pg_schema, ParseError, ParsedMode};
pub use pipeline::{
    AbsorbReport, Discoverer, DiscoveryResult, PipelineStats, ShardedResult, StageTimings,
    StreamResult,
};
pub use retract::{retract_batch, RetractionStats};
pub use schema::{
    label_set, Cardinality, CardinalityClass, EdgeType, LabelSet, NodeType, PropertySpec,
    SchemaGraph,
};
pub use serve::{DriftHook, DriftNotice, RunningServer, ServeCore, ServeOptions};
pub use sigcache::{CacheStats, CachedChunk, SignatureCache};
pub use snapshot::{
    FileCheckpoint, ResumeContext, Snapshot, SnapshotConfig, SnapshotError, WatchCheckpoint,
};
pub use state::SchemaState;
pub use validate::{
    validate, CompiledSchema, StreamValidationReport, StreamViolation, ValidationMode,
    ValidationReport, Validator, Violation, ViolationKind, DEFAULT_MAX_EXAMPLES,
};
