//! Schema diffing: report how one schema evolved into another.
//!
//! Real deployments re-run discovery as graphs evolve; understanding *what
//! changed* (new types, new properties, constraints relaxed, cardinalities
//! widened) is the operational counterpart of the paper's incremental
//! monotone chain (§4.6) — a diff of two consecutive incremental schemas
//! should contain only additions and relaxations, never removals.

use crate::schema::{CardinalityClass, LabelSet, SchemaGraph};
use pg_hive_graph::ValueKind;
use std::collections::BTreeSet;
use std::fmt;

/// A per-property change between two versions of the same type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyChange {
    /// The key appears only in the new version.
    Added {
        /// The property key.
        key: String,
    },
    /// The key appears only in the old version.
    Removed {
        /// The property key.
        key: String,
    },
    /// MANDATORY → OPTIONAL (a relaxation) or the reverse (a tightening).
    ConstraintChanged {
        /// The property key.
        key: String,
        /// Whether the key was mandatory in the old version.
        was_mandatory: bool,
        /// Whether the key is mandatory in the new version.
        now_mandatory: bool,
    },
    /// The inferred datatype changed.
    KindChanged {
        /// The property key.
        key: String,
        /// Old inferred kind (`None` = never inferred).
        was: Option<ValueKind>,
        /// New inferred kind.
        now: Option<ValueKind>,
    },
}

/// Changes to one type that exists in both schemas (matched by label set).
#[derive(Debug, Clone, Default)]
pub struct TypeDelta {
    /// Label set identifying the type in both schemas.
    pub labels: LabelSet,
    /// Per-property additions, removals, constraint and kind changes.
    pub property_changes: Vec<PropertyChange>,
    /// For edge types: newly observed endpoint pairs.
    pub added_endpoints: Vec<(LabelSet, LabelSet)>,
    /// For edge types: endpoint pairs no longer observed.
    pub removed_endpoints: Vec<(LabelSet, LabelSet)>,
    /// For edge types: cardinality class change (old, new).
    pub cardinality_change: Option<(Option<CardinalityClass>, Option<CardinalityClass>)>,
}

impl TypeDelta {
    /// True when nothing about the type changed.
    pub fn is_empty(&self) -> bool {
        self.property_changes.is_empty()
            && self.added_endpoints.is_empty()
            && self.removed_endpoints.is_empty()
            && self.cardinality_change.is_none()
    }
}

/// The full diff between an `old` and a `new` schema.
#[derive(Debug, Clone, Default)]
pub struct SchemaDiff {
    /// Node types present only in the new schema.
    pub added_node_types: Vec<LabelSet>,
    /// Node types present only in the old schema.
    pub removed_node_types: Vec<LabelSet>,
    /// Node types present in both but changed.
    pub changed_node_types: Vec<TypeDelta>,
    /// Edge types present only in the new schema.
    pub added_edge_types: Vec<LabelSet>,
    /// Edge types present only in the old schema.
    pub removed_edge_types: Vec<LabelSet>,
    /// Edge types present in both but changed.
    pub changed_edge_types: Vec<TypeDelta>,
}

impl SchemaDiff {
    /// True when the schemas are equivalent at the diff granularity.
    pub fn is_empty(&self) -> bool {
        self.added_node_types.is_empty()
            && self.removed_node_types.is_empty()
            && self.changed_node_types.is_empty()
            && self.added_edge_types.is_empty()
            && self.removed_edge_types.is_empty()
            && self.changed_edge_types.is_empty()
    }

    /// True when the diff contains only additions and constraint
    /// relaxations — what an incremental step is allowed to do (§4.6).
    pub fn is_monotone(&self) -> bool {
        if !self.removed_node_types.is_empty() || !self.removed_edge_types.is_empty() {
            return false;
        }
        let only_additions = |delta: &TypeDelta| {
            delta.removed_endpoints.is_empty()
                && delta.property_changes.iter().all(|c| match c {
                    PropertyChange::Added { .. } => true,
                    PropertyChange::Removed { .. } => false,
                    PropertyChange::ConstraintChanged { now_mandatory, .. } => !now_mandatory,
                    // Kind generalization is monotone (lattice join).
                    PropertyChange::KindChanged { was, now, .. } => match (was, now) {
                        (Some(w), Some(n)) => w.join(*n) == *n,
                        (None, Some(_)) => true,
                        _ => false,
                    },
                })
        };
        self.changed_node_types.iter().all(only_additions)
            && self.changed_edge_types.iter().all(only_additions)
    }
}

impl fmt::Display for SchemaDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_labels = |l: &LabelSet| {
            if l.is_empty() {
                "(abstract)".to_string()
            } else {
                l.iter().cloned().collect::<Vec<_>>().join("&")
            }
        };
        for l in &self.added_node_types {
            writeln!(f, "+ node type {}", fmt_labels(l))?;
        }
        for l in &self.removed_node_types {
            writeln!(f, "- node type {}", fmt_labels(l))?;
        }
        for d in &self.changed_node_types {
            writeln!(f, "~ node type {}", fmt_labels(&d.labels))?;
            for c in &d.property_changes {
                writeln!(f, "    {c:?}")?;
            }
        }
        for l in &self.added_edge_types {
            writeln!(f, "+ edge type {}", fmt_labels(l))?;
        }
        for l in &self.removed_edge_types {
            writeln!(f, "- edge type {}", fmt_labels(l))?;
        }
        for d in &self.changed_edge_types {
            writeln!(f, "~ edge type {}", fmt_labels(&d.labels))?;
            for c in &d.property_changes {
                writeln!(f, "    {c:?}")?;
            }
            for (s, t) in &d.added_endpoints {
                writeln!(f, "    + endpoint {} -> {}", fmt_labels(s), fmt_labels(t))?;
            }
        }
        Ok(())
    }
}

/// Compute the diff from `old` to `new`, matching types by label set.
/// Abstract (unlabeled) types are matched by property-key-set equality.
pub fn diff_schemas(old: &SchemaGraph, new: &SchemaGraph) -> SchemaDiff {
    let mut diff = SchemaDiff::default();

    // --- node types ---
    for nt in &new.node_types {
        match find_node(old, nt) {
            None => diff.added_node_types.push(nt.labels.clone()),
            Some(ot) => {
                let mut delta = TypeDelta {
                    labels: nt.labels.clone(),
                    ..Default::default()
                };
                prop_changes(
                    &old.node_types[ot].props,
                    &nt.props,
                    old.node_types[ot].instance_count,
                    nt.instance_count,
                    &mut delta.property_changes,
                );
                if !delta.is_empty() {
                    diff.changed_node_types.push(delta);
                }
            }
        }
    }
    for ot in &old.node_types {
        if find_node(new, ot).is_none() {
            diff.removed_node_types.push(ot.labels.clone());
        }
    }

    // --- edge types ---
    for nt in &new.edge_types {
        match old.edge_type_by_labels(&nt.labels) {
            None => diff.added_edge_types.push(nt.labels.clone()),
            Some(ot) => {
                let old_t = &old.edge_types[ot];
                let mut delta = TypeDelta {
                    labels: nt.labels.clone(),
                    ..Default::default()
                };
                prop_changes(
                    &old_t.props,
                    &nt.props,
                    old_t.instance_count,
                    nt.instance_count,
                    &mut delta.property_changes,
                );
                for ep in nt.endpoints.difference(&old_t.endpoints) {
                    delta.added_endpoints.push(ep.clone());
                }
                for ep in old_t.endpoints.difference(&nt.endpoints) {
                    delta.removed_endpoints.push(ep.clone());
                }
                let old_class = old_t.cardinality.map(|c| c.class());
                let new_class = nt.cardinality.map(|c| c.class());
                if old_class != new_class {
                    delta.cardinality_change = Some((old_class, new_class));
                }
                if !delta.is_empty() {
                    diff.changed_edge_types.push(delta);
                }
            }
        }
    }
    for ot in &old.edge_types {
        if new.edge_type_by_labels(&ot.labels).is_none() {
            diff.removed_edge_types.push(ot.labels.clone());
        }
    }

    diff
}

fn find_node(schema: &SchemaGraph, t: &crate::schema::NodeType) -> Option<usize> {
    if !t.labels.is_empty() {
        return schema.node_type_by_labels(&t.labels);
    }
    // Abstract types: match by key set.
    let keys: BTreeSet<&str> = t.props.keys().map(String::as_str).collect();
    schema.node_types.iter().position(|o| {
        o.labels.is_empty() && o.props.keys().map(String::as_str).collect::<BTreeSet<_>>() == keys
    })
}

fn prop_changes(
    old: &std::collections::BTreeMap<String, crate::schema::PropertySpec>,
    new: &std::collections::BTreeMap<String, crate::schema::PropertySpec>,
    old_count: u64,
    new_count: u64,
    out: &mut Vec<PropertyChange>,
) {
    for (key, nspec) in new {
        match old.get(key) {
            None => out.push(PropertyChange::Added { key: key.clone() }),
            Some(ospec) => {
                let was = ospec.is_mandatory(old_count);
                let now = nspec.is_mandatory(new_count);
                if was != now {
                    out.push(PropertyChange::ConstraintChanged {
                        key: key.clone(),
                        was_mandatory: was,
                        now_mandatory: now,
                    });
                }
                if ospec.kind != nspec.kind {
                    out.push(PropertyChange::KindChanged {
                        key: key.clone(),
                        was: ospec.kind,
                        now: nspec.kind,
                    });
                }
            }
        }
    }
    for key in old.keys() {
        if !new.contains_key(key) {
            out.push(PropertyChange::Removed { key: key.clone() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{label_set, NodeType, PropertySpec};
    use std::collections::BTreeMap;

    fn node_type(
        labels: &[&str],
        props: &[(&str, u64, Option<ValueKind>)],
        count: u64,
    ) -> NodeType {
        NodeType {
            labels: label_set(labels),
            props: props
                .iter()
                .map(|(k, occ, kind)| {
                    (
                        k.to_string(),
                        PropertySpec {
                            occurrences: *occ,
                            kind: *kind,
                        },
                    )
                })
                .collect::<BTreeMap<_, _>>(),
            instance_count: count,
            members: vec![],
        }
    }

    fn schema(types: Vec<NodeType>) -> SchemaGraph {
        SchemaGraph {
            node_types: types,
            edge_types: vec![],
        }
    }

    #[test]
    fn identical_schemas_diff_empty() {
        let s = schema(vec![node_type(&["A"], &[("x", 5, None)], 5)]);
        let d = diff_schemas(&s, &s.clone());
        assert!(d.is_empty());
        assert!(d.is_monotone());
    }

    #[test]
    fn added_type_is_monotone() {
        let old = schema(vec![node_type(&["A"], &[], 1)]);
        let new = schema(vec![node_type(&["A"], &[], 1), node_type(&["B"], &[], 1)]);
        let d = diff_schemas(&old, &new);
        assert_eq!(d.added_node_types, vec![label_set(&["B"])]);
        assert!(d.is_monotone());
    }

    #[test]
    fn removed_type_is_not_monotone() {
        let old = schema(vec![node_type(&["A"], &[], 1), node_type(&["B"], &[], 1)]);
        let new = schema(vec![node_type(&["A"], &[], 1)]);
        let d = diff_schemas(&old, &new);
        assert_eq!(d.removed_node_types, vec![label_set(&["B"])]);
        assert!(!d.is_monotone());
    }

    #[test]
    fn mandatory_to_optional_is_monotone_relaxation() {
        // x present in all 5 of 5 → mandatory; then in 5 of 8 → optional.
        let old = schema(vec![node_type(&["A"], &[("x", 5, None)], 5)]);
        let new = schema(vec![node_type(&["A"], &[("x", 5, None)], 8)]);
        let d = diff_schemas(&old, &new);
        assert_eq!(d.changed_node_types.len(), 1);
        assert!(matches!(
            d.changed_node_types[0].property_changes[0],
            PropertyChange::ConstraintChanged {
                was_mandatory: true,
                now_mandatory: false,
                ..
            }
        ));
        assert!(d.is_monotone());
    }

    #[test]
    fn optional_to_mandatory_is_a_tightening() {
        let old = schema(vec![node_type(&["A"], &[("x", 5, None)], 8)]);
        let new = schema(vec![node_type(&["A"], &[("x", 5, None)], 5)]);
        let d = diff_schemas(&old, &new);
        assert!(!d.is_monotone());
    }

    #[test]
    fn kind_generalization_is_monotone_specialization_is_not() {
        use pg_hive_graph::ValueKind::*;
        let old = schema(vec![node_type(&["A"], &[("x", 1, Some(Integer))], 1)]);
        let new = schema(vec![node_type(&["A"], &[("x", 1, Some(Float))], 1)]);
        assert!(diff_schemas(&old, &new).is_monotone(), "Int → Float widens");
        assert!(
            !diff_schemas(&new, &old).is_monotone(),
            "Float → Int narrows"
        );
    }

    #[test]
    fn abstract_types_match_by_key_set() {
        let old = schema(vec![node_type(&[], &[("x", 1, None), ("y", 1, None)], 1)]);
        let new = schema(vec![node_type(&[], &[("x", 1, None), ("y", 1, None)], 2)]);
        let d = diff_schemas(&old, &new);
        assert!(d.added_node_types.is_empty());
        assert!(d.removed_node_types.is_empty());
    }

    #[test]
    fn incremental_chain_diffs_are_monotone() {
        // Real pipeline check: consecutive incremental schemas diff monotonically.
        use crate::pipeline::Discoverer;
        use crate::PipelineConfig;
        use pg_hive_graph::{split_batches, GraphBuilder, Value};
        let mut b = GraphBuilder::new();
        for i in 0..60 {
            let props: Vec<(&str, Value)> = if i % 3 == 0 {
                vec![("name", Value::from("x"))]
            } else {
                vec![("name", Value::from("x")), ("age", Value::Int(i))]
            };
            b.add_node(&[if i % 2 == 0 { "A" } else { "B" }], &props);
        }
        let g = b.finish();
        let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
        let batches = split_batches(&g, 4, 9);
        let mut prev: Option<SchemaGraph> = None;
        for upto in 1..=4 {
            let r = discoverer.discover_batches(&g, &batches[..upto]);
            if let Some(p) = &prev {
                let d = diff_schemas(p, &r.schema);
                assert!(d.is_monotone(), "step {upto}: {d}");
            }
            prev = Some(r.schema);
        }
    }

    #[test]
    fn display_renders_changes() {
        let old = schema(vec![node_type(&["A"], &[], 1)]);
        let new = schema(vec![node_type(&["B"], &[], 1)]);
        let text = diff_schemas(&old, &new).to_string();
        assert!(text.contains("+ node type B"));
        assert!(text.contains("- node type A"));
    }
}
