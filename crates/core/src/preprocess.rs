//! Stage (b): representation vectors (§4.1), with signature deduplication.
//!
//! Every node becomes `w·Word2Vec(labels) ∥ b_v ∈ {0,1}^K` and every edge
//! `w·Word2Vec(edge) ∥ w·Word2Vec(src) ∥ w·Word2Vec(tgt) ∥ b_e ∈ {0,1}^K`,
//! where `K` is the number of distinct property keys, unlabeled elements get
//! the zero embedding, and multi-label sets are embedded via their sorted
//! concatenation ([`pg_hive_embed::canonical_token`]). The binary property
//! coordinates are keyed on the interner's **canonical-id view**
//! ([`pg_hive_graph::PropertyGraph::canonical_key_ids`]) — the rank of each
//! key in the sorted key table, not its raw intern order — so the same
//! element content yields the same vector (and therefore the same LSH
//! clustering) no matter which order a wire format introduced the keys in. `w` is the
//! `label_weight` factor (see [`crate::config::PipelineConfig`]): the
//! paper's distances come out of raw Word2Vec norms, ours are normalized, so
//! the weight restores "semantically different nodes are not merged due to
//! the same structure".
//!
//! For the MinHash variant the same information is rendered as feature-id
//! *sets*: property keys plus salted copies of the label tokens (copies
//! raise the labels' share of the Jaccard similarity — the set-based
//! analogue of `label_weight`).
//!
//! # Signature deduplication
//!
//! An element's representation is a pure function of its **signature** —
//! for nodes `(labels, property keys)`, for edges `(labels, source labels,
//! target labels, property keys)`. Real property graphs have orders of
//! magnitude fewer distinct signatures than elements (LDBC at 100k nodes
//! has a few dozen), so each distinct signature is embedded **once** into a
//! flat [`VectorMatrix`] row and every element carries only an index into
//! it (`rep_of`). Downstream, LSH runs on the distinct rows and the
//! assignment is broadcast back through `rep_of` — provably the same
//! clustering (identical vectors always share every hash bucket) at a
//! fraction of the hashing and embedding work. See
//! [`crate::cluster::cluster_elements`].

use pg_hive_embed::{canonical_token, LabelEmbedder};
use pg_hive_graph::{EdgeId, GraphBatch, NodeId, PropertyGraph, Symbol};
use pg_hive_lsh::fx::FxHashMap;
use pg_hive_lsh::VectorMatrix;
use std::collections::HashSet;

/// Salted label-feature copies in node sets.
pub const NODE_LABEL_COPIES: usize = 8;
/// Salted copies of the composite edge identity feature
/// `hash(label ⊕ src-labels ⊕ tgt-labels)`. A composite (rather than three
/// independent token features) means a mismatch in *any* component drops
/// the Jaccard similarity below the banding threshold — the set-based
/// analogue of the paper's three concatenated Word2Vec slots, where any
/// differing slot separates the vectors in L2.
pub const EDGE_IDENTITY_COPIES: usize = 12;

/// Deduplicated dense + set representations of one element class.
///
/// `matrix.rows() == sets.len()` is the number of **distinct signatures**;
/// `rep_of.len()` is the number of **elements**, each entry pointing at its
/// signature's row.
#[derive(Debug, Clone, Default)]
pub struct ElementRepr {
    /// One row per distinct signature, dimension `d + K` (nodes) or
    /// `3d + K` (edges).
    pub matrix: VectorMatrix,
    /// One feature-id set per distinct signature (for MinHash).
    pub sets: Vec<Vec<u64>>,
    /// Element → distinct-signature row.
    pub rep_of: Vec<u32>,
    /// Distinct individual labels observed among these elements (the `L`
    /// of the adaptive heuristics).
    pub distinct_labels: usize,
}

impl ElementRepr {
    /// Number of elements represented.
    pub fn len(&self) -> usize {
        self.rep_of.len()
    }

    /// True when no elements are represented.
    pub fn is_empty(&self) -> bool {
        self.rep_of.is_empty()
    }

    /// Number of distinct signatures.
    pub fn distinct(&self) -> usize {
        self.matrix.rows()
    }

    /// Dense vector of element `i` (via its representative row).
    pub fn dense_of(&self, i: usize) -> &[f32] {
        self.matrix.row(self.rep_of[i] as usize)
    }

    /// Feature set of element `i` (via its representative row).
    pub fn set_of(&self, i: usize) -> &[u64] {
        &self.sets[self.rep_of[i] as usize]
    }

    /// Elements per distinct signature (the dedup win; 1.0 = no sharing).
    pub fn dedup_ratio(&self) -> f64 {
        if self.matrix.rows() == 0 {
            1.0
        } else {
            self.len() as f64 / self.distinct() as f64
        }
    }

    /// Expand the dense rows back to one per element — the naive
    /// per-element layout (`dedup: false` runs and equivalence tests).
    pub fn expanded_matrix(&self) -> VectorMatrix {
        let mut matrix = VectorMatrix::with_capacity(self.len(), self.matrix.dim());
        for &r in &self.rep_of {
            matrix.push_row(self.matrix.row(r as usize));
        }
        matrix
    }

    /// Expand the feature sets back to one per element.
    pub fn expanded_sets(&self) -> Vec<Vec<u64>> {
        self.rep_of
            .iter()
            .map(|&r| self.sets[r as usize].clone())
            .collect()
    }
}

/// Representations of a batch's nodes.
#[derive(Debug, Clone)]
pub struct NodeRepr {
    /// The batch's node ids, in representation-row order.
    pub ids: Vec<NodeId>,
    /// Deduplicated representation vectors + per-element `rep_of` map.
    pub repr: ElementRepr,
}

/// Representations of a batch's edges.
#[derive(Debug, Clone)]
pub struct EdgeRepr {
    /// The batch's edge ids, in representation-row order.
    pub ids: Vec<EdgeId>,
    /// Deduplicated representation vectors + per-element `rep_of` map.
    pub repr: ElementRepr,
}

/// Signatures are flat `Vec<u32>` encodings — length-prefixed symbol-id
/// sections in stored order, e.g. a node is `[n_labels, labels…, keys…]`
/// and an edge `[n_labels, n_src, n_tgt, labels…, src…, tgt…, keys…]` (the
/// trailing keys section needs no prefix; its extent is implied). The
/// encoding is injective over the old tuple-of-`Vec` signatures, and a flat
/// key means the dedup **hit path is allocation-free**: each element's
/// signature is encoded into one reusable scratch buffer and looked up by
/// `&[u32]` borrow; the buffer is only moved into the map (one allocation
/// kept) on a distinct-signature miss. Stored order is at least as fine as
/// representation equality — two nodes whose signatures differ only in
/// ordering get separate rows with *equal* vectors, which LSH clusters
/// together anyway.
fn encode_sections(out: &mut Vec<u32>, sections: &[&[Symbol]], keys: impl Iterator<Item = Symbol>) {
    out.clear();
    out.extend(sections.iter().map(|s| s.len() as u32));
    for section in sections {
        out.extend(section.iter().map(|s| s.0));
    }
    out.extend(keys.map(|k| k.0));
}

/// Build deduplicated node representations for `ids` (a batch or the whole
/// graph).
pub fn node_representations(
    g: &PropertyGraph,
    ids: &[NodeId],
    embedder: &dyn LabelEmbedder,
    label_weight: f32,
) -> NodeRepr {
    let d = embedder.dim();
    let key_count = g.keys().len();
    let canon = g.canonical_key_ids();
    let mut repr = ElementRepr {
        matrix: VectorMatrix::new(d + key_count),
        ..ElementRepr::default()
    };
    let mut rows: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut labels_seen: HashSet<u32> = HashSet::new();
    let mut sig: Vec<u32> = Vec::new();

    for &id in ids {
        let n = g.node(id);
        for &l in &n.labels {
            labels_seen.insert(l.0);
        }
        encode_sections(&mut sig, &[&n.labels], n.keys());
        let row = match rows.get(sig.as_slice()) {
            Some(&row) => row,
            None => {
                let row = repr.matrix.rows() as u32;
                let token = token_of(g, &n.labels);
                repr.matrix.push_row_with(|v| {
                    if let Some(tok) = &token {
                        embedder.embed_into(tok, &mut v[..d]);
                        for x in &mut v[..d] {
                            *x *= label_weight;
                        }
                    }
                    for k in n.keys() {
                        v[d + canon[k.index()] as usize] = 1.0;
                    }
                });

                let mut set = Vec::with_capacity(n.props.len() + NODE_LABEL_COPIES);
                if let Some(tok) = &token {
                    push_salted(&mut set, tok, NODE_LABEL_COPIES, 0x4E);
                }
                for k in n.keys() {
                    set.push(feature_hash(g.key_str(k), 0x50));
                }
                repr.sets.push(set);
                rows.insert(std::mem::take(&mut sig), row);
                row
            }
        };
        repr.rep_of.push(row);
    }

    repr.distinct_labels = labels_seen.len();
    NodeRepr {
        ids: ids.to_vec(),
        repr,
    }
}

/// Build deduplicated edge representations for `ids`.
pub fn edge_representations(
    g: &PropertyGraph,
    ids: &[EdgeId],
    embedder: &dyn LabelEmbedder,
    label_weight: f32,
) -> EdgeRepr {
    let d = embedder.dim();
    let key_count = g.keys().len();
    let canon = g.canonical_key_ids();
    let mut repr = ElementRepr {
        matrix: VectorMatrix::new(3 * d + key_count),
        ..ElementRepr::default()
    };
    let mut rows: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut labels_seen: HashSet<u32> = HashSet::new();
    let mut sig: Vec<u32> = Vec::new();

    for &id in ids {
        let e = g.edge(id);
        for &l in &e.labels {
            labels_seen.insert(l.0);
        }
        let (src, tgt) = g.edge_endpoint_labels(e);
        encode_sections(&mut sig, &[&e.labels, src, tgt], e.keys());
        let row = match rows.get(sig.as_slice()) {
            Some(&row) => row,
            None => {
                let row = repr.matrix.rows() as u32;
                let e_tok = token_of(g, &e.labels);
                let s_tok = token_of(g, src);
                let t_tok = token_of(g, tgt);

                repr.matrix.push_row_with(|v| {
                    for (slot, tok) in [(0, &e_tok), (1, &s_tok), (2, &t_tok)] {
                        if let Some(tok) = tok {
                            let range = slot * d..(slot + 1) * d;
                            embedder.embed_into(tok, &mut v[range.clone()]);
                            for x in &mut v[range] {
                                *x *= label_weight;
                            }
                        }
                    }
                    for k in e.keys() {
                        v[3 * d + canon[k.index()] as usize] = 1.0;
                    }
                });

                let mut set = Vec::with_capacity(e.props.len() + EDGE_IDENTITY_COPIES);
                if e_tok.is_some() || s_tok.is_some() || t_tok.is_some() {
                    let identity = format!(
                        "{}\u{1}{}\u{1}{}",
                        e_tok.as_deref().unwrap_or(""),
                        s_tok.as_deref().unwrap_or(""),
                        t_tok.as_deref().unwrap_or("")
                    );
                    push_salted(&mut set, &identity, EDGE_IDENTITY_COPIES, 0xED);
                }
                for k in e.keys() {
                    set.push(feature_hash(g.key_str(k), 0x50));
                }
                repr.sets.push(set);
                rows.insert(std::mem::take(&mut sig), row);
                row
            }
        };
        repr.rep_of.push(row);
    }

    repr.distinct_labels = labels_seen.len();
    EdgeRepr {
        ids: ids.to_vec(),
        repr,
    }
}

/// Label co-occurrence sentences for Word2Vec training (§4.1): one sentence
/// per edge, `[src_token, edge_token, tgt_token]`, plus for every multi-label
/// node a sentence relating its individual labels to the combined token.
pub fn label_sentences(g: &PropertyGraph, batch: &GraphBatch) -> Vec<Vec<String>> {
    let mut sentences = Vec::new();
    for &eid in &batch.edges {
        let e = g.edge(eid);
        let (src, tgt) = g.edge_endpoint_labels(e);
        let mut s = Vec::with_capacity(3);
        if let Some(t) = token_of(g, src) {
            s.push(t);
        }
        if let Some(t) = token_of(g, &e.labels) {
            s.push(t);
        }
        if let Some(t) = token_of(g, tgt) {
            s.push(t);
        }
        if s.len() >= 2 {
            sentences.push(s);
        }
    }
    for &nid in &batch.nodes {
        let n = g.node(nid);
        if n.labels.len() >= 2 {
            let mut s: Vec<String> = n
                .labels
                .iter()
                .map(|&l| g.label_str(l).to_string())
                .collect();
            if let Some(t) = token_of(g, &n.labels) {
                s.push(t);
            }
            sentences.push(s);
        }
    }
    sentences
}

fn token_of(g: &PropertyGraph, labels: &[pg_hive_graph::Symbol]) -> Option<String> {
    let strs: Vec<&str> = labels.iter().map(|&l| g.label_str(l)).collect();
    canonical_token(&strs)
}

/// One element class's dedup structure as the signature-only scan sees it:
/// element → distinct-row map plus the distinct-row count — everything a
/// cached distinct-level clustering needs to be broadcast back to this
/// chunk's elements.
#[derive(Debug, Clone, Default)]
pub struct ScanClass {
    /// Element → distinct-signature row (first-occurrence numbering,
    /// identical to the full preprocess's `rep_of`).
    pub rep_of: Vec<u32>,
    /// Number of distinct signatures.
    pub distinct: usize,
}

/// Result of [`signature_scan`]: the chunk's structural fingerprint and
/// both classes' dedup structure, computed **without** any embedding,
/// matrix, or feature-set work.
#[derive(Debug, Clone)]
pub struct SignatureScan {
    /// 128-bit fingerprint of everything that determines the chunk's
    /// clusterings (see [`signature_scan`]).
    pub fingerprint: u128,
    /// Node dedup structure.
    pub nodes: ScanClass,
    /// Edge dedup structure.
    pub edges: ScanClass,
}

/// Two independent FNV-1a 64 lanes over the same byte stream — a cheap
/// 128-bit structural fingerprint. Strings are delimited with `0xFF` and
/// sections/elements with dedicated `0xF9..0xFE` markers, none of which can
/// occur inside valid UTF-8, so the encoding is injective over the hashed
/// structure.
struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    fn new() -> Self {
        Self {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0xcbf2_9ce4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01B3);
        self.b = (self.b ^ u64::from(x ^ 0xA5)).wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn str(&mut self, s: &str) {
        for &x in s.as_bytes() {
            self.byte(x);
        }
        self.byte(0xFF);
    }

    fn mark(&mut self, m: u8) {
        self.byte(m);
    }

    fn value(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Scan a batch's **signatures only**: compute the chunk's structural
/// fingerprint plus each class's `rep_of`/distinct-count, skipping all
/// embedding, matrix, and feature-set work.
///
/// The fingerprint covers, at the **string** level (symbol ids are
/// chunk-local and deliberately not hashed):
///
/// - the chunk's full property-key table in canonical (sorted) order —
///   this fixes both the representation dimension `d + K` and every key's
///   binary coordinate ([`PropertyGraph::canonical_key_ids`]);
/// - per node, in batch order: its labels and keys in stored order;
/// - per edge, in batch order: its labels, endpoint labels, and keys in
///   stored order.
///
/// Two chunks with equal fingerprints therefore produce identical
/// representation matrices, feature sets, `rep_of` maps, and distinct-label
/// counts — and since adaptive parameter derivation and both LSH families
/// are deterministic functions of exactly those inputs (plus the fixed
/// config), **identical clusterings**. That is the soundness argument for
/// [`crate::sigcache::SignatureCache`]: a cached distinct-level clustering
/// looked up by fingerprint, broadcast through this scan's `rep_of`, equals
/// the clustering the full pipeline would have computed.
pub fn signature_scan(g: &PropertyGraph, batch: &GraphBatch) -> SignatureScan {
    let mut fp = Fingerprint::new();
    // Key universe, canonical order.
    let mut keys: Vec<&str> = g.keys().iter().map(|(_, s)| s).collect();
    keys.sort_unstable();
    fp.mark(0xFE);
    for k in keys {
        fp.str(k);
    }

    let mut nodes = ScanClass::default();
    let mut rows: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut sig: Vec<u32> = Vec::new();
    fp.mark(0xFD);
    for &id in &batch.nodes {
        let n = g.node(id);
        fp.mark(0xFC);
        for &l in &n.labels {
            fp.str(g.label_str(l));
        }
        fp.mark(0xFB);
        for k in n.keys() {
            fp.str(g.key_str(k));
        }
        encode_sections(&mut sig, &[&n.labels], n.keys());
        let next = rows.len() as u32;
        let row = match rows.get(sig.as_slice()) {
            Some(&row) => row,
            None => {
                rows.insert(std::mem::take(&mut sig), next);
                next
            }
        };
        nodes.rep_of.push(row);
    }
    nodes.distinct = rows.len();

    let mut edges = ScanClass::default();
    let mut rows: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    fp.mark(0xFA);
    for &id in &batch.edges {
        let e = g.edge(id);
        let (src, tgt) = g.edge_endpoint_labels(e);
        fp.mark(0xFC);
        for section in [&e.labels[..], src, tgt] {
            for &l in section {
                fp.str(g.label_str(l));
            }
            fp.mark(0xF9);
        }
        fp.mark(0xFB);
        for k in e.keys() {
            fp.str(g.key_str(k));
        }
        encode_sections(&mut sig, &[&e.labels, src, tgt], e.keys());
        let next = rows.len() as u32;
        let row = match rows.get(sig.as_slice()) {
            Some(&row) => row,
            None => {
                rows.insert(std::mem::take(&mut sig), next);
                next
            }
        };
        edges.rep_of.push(row);
    }
    edges.distinct = rows.len();

    SignatureScan {
        fingerprint: fp.value(),
        nodes,
        edges,
    }
}

fn push_salted(set: &mut Vec<u64>, token: &str, copies: usize, salt: u64) {
    for i in 0..copies {
        set.push(feature_hash(token, salt ^ ((i as u64 + 1) << 8)));
    }
}

fn feature_hash(s: &str, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_embed::HashEmbedder;
    use pg_hive_graph::{split_batches, GraphBuilder, Value};

    fn sample_graph() -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let p1 = b.add_node(
            &["Person"],
            &[("name", Value::from("Bob")), ("age", Value::Int(40))],
        );
        let p2 = b.add_node(
            &["Person"],
            &[("name", Value::from("Jo")), ("age", Value::Int(30))],
        );
        let anon = b.add_node(
            &[],
            &[("name", Value::from("Alice")), ("age", Value::Int(20))],
        );
        let org = b.add_node(&["Org"], &[("url", Value::from("x.com"))]);
        b.add_edge(p1, org, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        b.add_edge(p2, org, &["WORKS_AT"], &[]);
        b.add_edge(anon, p1, &["KNOWS"], &[]);
        b.finish()
    }

    fn all_nodes(g: &PropertyGraph) -> Vec<NodeId> {
        g.nodes().map(|(id, _)| id).collect()
    }
    fn all_edges(g: &PropertyGraph) -> Vec<EdgeId> {
        g.edges().map(|(id, _)| id).collect()
    }

    #[test]
    fn node_vector_layout() {
        let g = sample_graph();
        let emb = HashEmbedder::new(8, 1);
        let r = node_representations(&g, &all_nodes(&g), &emb, 2.0);
        // d + K where K = all interned keys (name, age, url, from).
        assert_eq!(r.repr.dense_of(0).len(), 8 + 4);
        // Same labels + same keys ⇒ identical embedding halves.
        assert_eq!(r.repr.dense_of(0)[..8], r.repr.dense_of(1)[..8]);
        // Binary part marks name+age for persons.
        let ones: usize = r.repr.dense_of(0)[8..].iter().map(|&x| x as usize).sum();
        assert_eq!(ones, 2);
        assert_eq!(r.repr.distinct_labels, 2); // Person, Org
    }

    #[test]
    fn duplicate_signatures_share_a_row() {
        let g = sample_graph();
        let emb = HashEmbedder::new(8, 1);
        let r = node_representations(&g, &all_nodes(&g), &emb, 2.0);
        // Both Person nodes have signature (Person | name, age).
        assert_eq!(r.repr.len(), 4);
        assert_eq!(r.repr.distinct(), 3);
        assert_eq!(r.repr.rep_of[0], r.repr.rep_of[1]);
        assert_ne!(r.repr.rep_of[0], r.repr.rep_of[2]);
        assert!((r.repr.dedup_ratio() - 4.0 / 3.0).abs() < 1e-12);
        // The shared row is the same storage, and expansion restores the
        // per-element layout.
        let expanded = r.repr.expanded_matrix();
        let sets = r.repr.expanded_sets();
        assert_eq!(expanded.rows(), 4);
        assert_eq!(expanded.row(1), r.repr.dense_of(1));
        assert_eq!(sets[0], sets[1]);
    }

    #[test]
    fn node_vectors_are_key_interning_order_invariant() {
        // Regression: the binary coordinates used raw intern order, so the
        // same node content produced *permuted* vectors (hence different
        // ELSH projections) when a wire format introduced the keys in a
        // different order.
        let mk = |flipped: bool| {
            let mut b = GraphBuilder::new();
            let props = [("alpha", Value::Int(1)), ("beta", Value::Int(2))];
            if flipped {
                b.add_node(&["T"], &[props[1].clone(), props[0].clone()]);
            } else {
                b.add_node(&["T"], &props);
            }
            b.add_node(&["U"], &[("alpha", Value::Int(3))]);
            b.finish()
        };
        let (g1, g2) = (mk(false), mk(true));
        assert_ne!(
            g1.keys().get("alpha"),
            g2.keys().get("alpha"),
            "the two graphs really intern keys in different orders"
        );
        let emb = HashEmbedder::new(8, 1);
        let r1 = node_representations(&g1, &all_nodes(&g1), &emb, 2.0);
        let r2 = node_representations(&g2, &all_nodes(&g2), &emb, 2.0);
        for i in 0..2 {
            assert_eq!(r1.repr.dense_of(i), r2.repr.dense_of(i), "node {i}");
        }
    }

    #[test]
    fn unlabeled_node_gets_zero_embedding() {
        let g = sample_graph();
        let emb = HashEmbedder::new(8, 1);
        let r = node_representations(&g, &all_nodes(&g), &emb, 2.0);
        assert!(r.repr.dense_of(2)[..8].iter().all(|&x| x == 0.0));
        // ... but same binary part as the labeled persons.
        assert_eq!(r.repr.dense_of(2)[8..], r.repr.dense_of(0)[8..]);
    }

    #[test]
    fn label_weight_scales_embeddings() {
        let g = sample_graph();
        let emb = HashEmbedder::new(8, 1);
        let r1 = node_representations(&g, &all_nodes(&g), &emb, 1.0);
        let r4 = node_representations(&g, &all_nodes(&g), &emb, 4.0);
        for (a, b) in r1.repr.dense_of(0)[..8]
            .iter()
            .zip(&r4.repr.dense_of(0)[..8])
        {
            assert!((4.0 * a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn edge_vector_layout() {
        let g = sample_graph();
        let emb = HashEmbedder::new(8, 1);
        let r = edge_representations(&g, &all_edges(&g), &emb, 2.0);
        assert_eq!(r.repr.dense_of(0).len(), 3 * 8 + 4);
        // Both WORKS_AT edges share all three embedding slots.
        assert_eq!(r.repr.dense_of(0)[..24], r.repr.dense_of(1)[..24]);
        // But differ in the binary part ('from' on the first only) — so
        // they are distinct signatures, not shared rows.
        assert_ne!(r.repr.dense_of(0)[24..], r.repr.dense_of(1)[24..]);
        assert_eq!(r.repr.distinct(), 3);
        assert_eq!(r.repr.distinct_labels, 2); // WORKS_AT, KNOWS
    }

    #[test]
    fn unlabeled_source_zeroes_second_slot() {
        let g = sample_graph();
        let emb = HashEmbedder::new(8, 1);
        let r = edge_representations(&g, &all_edges(&g), &emb, 2.0);
        // Edge 2 is KNOWS from the unlabeled node.
        assert!(r.repr.dense_of(2)[8..16].iter().all(|&x| x == 0.0));
        // Its own label slot is non-zero.
        assert!(r.repr.dense_of(2)[..8].iter().any(|&x| x != 0.0));
    }

    #[test]
    fn node_sets_contain_label_copies_and_keys() {
        let g = sample_graph();
        let emb = HashEmbedder::new(4, 1);
        let r = node_representations(&g, &all_nodes(&g), &emb, 1.0);
        assert_eq!(r.repr.set_of(0).len(), NODE_LABEL_COPIES + 2);
        // Unlabeled: only keys.
        assert_eq!(r.repr.set_of(2).len(), 2);
        // Identical structure+labels ⇒ the same set (same row).
        assert_eq!(r.repr.set_of(0), r.repr.set_of(1));
    }

    #[test]
    fn sentences_from_edges() {
        let g = sample_graph();
        let batches = split_batches(&g, 1, 0);
        let s = label_sentences(&g, &batches[0]);
        assert_eq!(s.len(), 3);
        assert!(s.iter().any(|sent| sent.contains(&"WORKS_AT".to_string())
            && sent.contains(&"Person".to_string())
            && sent.contains(&"Org".to_string())));
        // KNOWS edge from unlabeled Alice: only 2 tokens but still kept.
        assert!(s.iter().any(|sent| sent.len() == 2));
    }

    #[test]
    fn multilabel_node_sentence() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(&["Person", "Student"], &[]);
        let c = b.add_node(&["School"], &[]);
        b.add_edge(a, c, &["ATTENDS"], &[]);
        let g = b.finish();
        let batches = split_batches(&g, 1, 0);
        let s = label_sentences(&g, &batches[0]);
        assert!(s
            .iter()
            .any(|sent| sent.contains(&"Person|Student".to_string())
                && sent.contains(&"Person".to_string())));
    }

    #[test]
    fn empty_batch_empty_reprs() {
        let g = sample_graph();
        let emb = HashEmbedder::new(4, 1);
        let r = node_representations(&g, &[], &emb, 1.0);
        assert!(r.repr.is_empty());
        assert_eq!(r.repr.distinct(), 0);
        assert_eq!(r.repr.distinct_labels, 0);
        assert_eq!(r.repr.dedup_ratio(), 1.0);
    }
}
