//! Parser for the PG-Schema declarations produced by [`crate::serialize`],
//! closing the round trip: a schema exported in STRICT (or LOOSE) form can
//! be re-ingested by external tools — or by this library — without access
//! to the original graph.
//!
//! The grammar matches the serializer's output exactly:
//!
//! ```text
//! CREATE GRAPH TYPE <Name> STRICT|LOOSE {
//!   (<TypeName>: <Label> [& <Label>]* [{ [OPTIONAL] key [KIND][, ...] }]),
//!   (:<Labels>) -[<TypeName>: <Labels> [{...}]]-> (:<Labels>) [/* cardinality C */],
//! }
//! ```
//!
//! Parsed schemas carry no instance statistics; mandatory/optional flags are
//! encoded through the `occurrences`/`instance_count` convention
//! (`instance_count = 2`, mandatory ⇒ 2, optional ⇒ 1).

use crate::schema::{Cardinality, EdgeType, LabelSet, NodeType, PropertySpec, SchemaGraph};
use pg_hive_graph::ValueKind;
use std::collections::BTreeMap;
use std::fmt;

/// Parse errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the declaration text where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Synthetic instance count used to encode constraints in parsed schemas.
pub const PARSED_INSTANCE_COUNT: u64 = 2;

/// Whether the parsed declaration was STRICT or LOOSE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsedMode {
    /// The declaration used `STRICT`.
    Strict,
    /// The declaration used `LOOSE`.
    Loose,
}

/// Parse a PG-Schema declaration back into a [`SchemaGraph`].
pub fn parse_pg_schema(text: &str) -> Result<(SchemaGraph, ParsedMode), ParseError> {
    let mut schema = SchemaGraph::new();
    let mut mode = None;
    let mut in_body = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with("CREATE GRAPH TYPE") {
            mode = Some(
                if trimmed.contains(" STRICT ") || trimmed.ends_with("STRICT {") {
                    ParsedMode::Strict
                } else if trimmed.contains(" LOOSE ") || trimmed.ends_with("LOOSE {") {
                    ParsedMode::Loose
                } else {
                    return Err(err(line, "expected STRICT or LOOSE"));
                },
            );
            in_body = true;
            continue;
        }
        if trimmed == "}" {
            in_body = false;
            continue;
        }
        if !in_body {
            return Err(err(line, "content outside the declaration body"));
        }
        let decl = trimmed.trim_end_matches(',');
        if decl.starts_with("(:") {
            parse_edge_decl(decl, line, &mut schema)?;
        } else if decl.starts_with('(') {
            parse_node_decl(decl, line, &mut schema)?;
        } else {
            return Err(err(line, "expected a node or edge declaration"));
        }
    }

    let mode = mode.ok_or_else(|| err(0, "missing CREATE GRAPH TYPE header"))?;
    Ok((schema, mode))
}

fn err(line: usize, message: &str) -> ParseError {
    ParseError {
        line,
        message: message.to_string(),
    }
}

/// `(Name: Label & Label {props})`
fn parse_node_decl(decl: &str, line: usize, schema: &mut SchemaGraph) -> Result<(), ParseError> {
    let inner = decl
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err(line, "node declaration must be parenthesized"))?;
    let (_name, rest) = inner
        .split_once(':')
        .ok_or_else(|| err(line, "missing ':' after type name"))?;
    let (label_part, prop_part) = split_props(rest);
    let labels = parse_labels(label_part.trim());
    let props = parse_props(prop_part, line)?;
    schema.node_types.push(NodeType {
        labels,
        props,
        instance_count: PARSED_INSTANCE_COUNT,
        members: vec![],
    });
    Ok(())
}

/// `(:Src) -[Name: Labels {props}]-> (:Tgt) /* cardinality C */`
fn parse_edge_decl(decl: &str, line: usize, schema: &mut SchemaGraph) -> Result<(), ParseError> {
    // Split off the cardinality comment.
    let (decl, cardinality) = match decl.split_once("/*") {
        Some((head, comment)) => {
            let card = comment
                .trim()
                .trim_start_matches("cardinality")
                .trim_end_matches("*/")
                .trim();
            (head.trim(), parse_cardinality(card))
        }
        None => (decl, None),
    };

    let open = decl.find("-[").ok_or_else(|| err(line, "missing '-['"))?;
    let close = decl.find("]->").ok_or_else(|| err(line, "missing ']->'"))?;
    if close < open {
        return Err(err(line, "malformed edge arrow"));
    }
    let src_part = decl[..open].trim();
    let mid = &decl[open + 2..close];
    let tgt_part = decl[close + 3..].trim();

    let src_labels = parse_endpoint(src_part, line)?;
    let tgt_labels = parse_endpoint(tgt_part, line)?;

    let (_name, rest) = mid
        .split_once(':')
        .ok_or_else(|| err(line, "missing ':' in edge type"))?;
    let (label_part, prop_part) = split_props(rest);
    let labels = parse_labels(label_part.trim());
    let props = parse_props(prop_part, line)?;

    // Merge repeated declarations of the same edge type (one line per
    // endpoint pair in the serialized form).
    match schema.edge_type_by_labels(&labels) {
        Some(idx) => {
            let t = &mut schema.edge_types[idx];
            t.endpoints.insert((src_labels, tgt_labels));
            if t.cardinality.is_none() {
                t.cardinality = cardinality;
            }
        }
        None => {
            schema.edge_types.push(EdgeType {
                labels,
                props,
                endpoints: [(src_labels, tgt_labels)].into(),
                instance_count: PARSED_INSTANCE_COUNT,
                members: vec![],
                cardinality,
            });
        }
    }
    Ok(())
}

/// Split `"Label & Label {prop, prop}"` into the label part and an optional
/// brace-enclosed property part.
fn split_props(rest: &str) -> (&str, Option<&str>) {
    match rest.find('{') {
        Some(i) => {
            let end = rest.rfind('}').unwrap_or(rest.len());
            (&rest[..i], Some(&rest[i + 1..end]))
        }
        None => (rest, None),
    }
}

fn parse_labels(part: &str) -> LabelSet {
    let part = part.trim();
    if part == "ABSTRACT" || part.is_empty() {
        return LabelSet::new();
    }
    part.split('&').map(|l| l.trim().to_string()).collect()
}

fn parse_endpoint(part: &str, line: usize) -> Result<LabelSet, ParseError> {
    let inner = part
        .strip_prefix("(:")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err(line, "endpoint must look like (:Label)"))?;
    if inner.trim() == "ANY" {
        return Ok(LabelSet::new());
    }
    Ok(parse_labels(inner))
}

fn parse_props(
    part: Option<&str>,
    line: usize,
) -> Result<BTreeMap<String, PropertySpec>, ParseError> {
    let mut props = BTreeMap::new();
    let Some(part) = part else {
        return Ok(props);
    };
    for item in part.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (optional, item) = match item.strip_prefix("OPTIONAL ") {
            Some(rest) => (true, rest.trim()),
            None => (false, item),
        };
        let mut tokens = item.split_whitespace();
        let key = tokens
            .next()
            .ok_or_else(|| err(line, "empty property item"))?
            .to_string();
        let kind = match tokens.next() {
            None => None, // LOOSE form: bare key
            Some(k) => Some(parse_kind(k, line)?),
        };
        props.insert(
            key,
            PropertySpec {
                occurrences: if optional { 1 } else { PARSED_INSTANCE_COUNT },
                kind,
            },
        );
    }
    Ok(props)
}

fn parse_kind(token: &str, line: usize) -> Result<ValueKind, ParseError> {
    Ok(match token {
        "INT" => ValueKind::Integer,
        "DOUBLE" => ValueKind::Float,
        "BOOLEAN" => ValueKind::Boolean,
        "DATE" => ValueKind::Date,
        "TIMESTAMP" => ValueKind::Timestamp,
        "STRING" => ValueKind::String,
        other => return Err(err(line, &format!("unknown data type '{other}'"))),
    })
}

fn parse_cardinality(notation: &str) -> Option<Cardinality> {
    // Class-level information only: reconstruct representative bounds.
    match notation {
        "0:1" => Some(Cardinality {
            max_out: 1,
            max_in: 1,
        }),
        "N:1" => Some(Cardinality {
            max_out: 2,
            max_in: 1,
        }),
        "0:N" => Some(Cardinality {
            max_out: 1,
            max_in: 2,
        }),
        "M:N" => Some(Cardinality {
            max_out: 2,
            max_in: 2,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Discoverer;
    use crate::serialize::{pg_schema_loose, pg_schema_strict};
    use crate::PipelineConfig;
    use pg_hive_graph::{GraphBuilder, Value};

    fn sample_schema() -> SchemaGraph {
        let mut b = GraphBuilder::new();
        let mut people = Vec::new();
        for i in 0..6 {
            let mut props = vec![
                ("name", Value::from("x")),
                ("bday", Value::from("1990-01-01")),
            ];
            if i % 2 == 0 {
                props.push(("email", Value::from("e")));
            }
            people.push(b.add_node(&["Person"], &props));
        }
        let org = b.add_node(&["Org"], &[("url", Value::from("u"))]);
        let anon = b.add_node(&[], &[("weird", Value::Int(1)), ("thing", Value::Int(2))]);
        for p in &people {
            b.add_edge(*p, org, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        }
        b.add_edge(anon, org, &["WORKS_AT"], &[]);
        Discoverer::new(PipelineConfig::elsh_adaptive())
            .discover(&b.finish())
            .schema
    }

    #[test]
    fn strict_round_trip_preserves_structure() {
        let schema = sample_schema();
        let text = pg_schema_strict(&schema, "RT");
        let (parsed, mode) = parse_pg_schema(&text).expect("parse back");
        assert_eq!(mode, ParsedMode::Strict);
        assert_eq!(parsed.node_types.len(), schema.node_types.len());
        assert_eq!(parsed.edge_types.len(), schema.edge_types.len());
        for t in &schema.node_types {
            let p = parsed
                .node_type_by_labels(&t.labels)
                .or_else(|| {
                    // abstract types: match by keys
                    parsed
                        .node_types
                        .iter()
                        .position(|o| o.labels.is_empty() && o.props.keys().eq(t.props.keys()))
                })
                .unwrap_or_else(|| panic!("type {:?} lost", t.labels));
            let pt = &parsed.node_types[p];
            // Keys preserved.
            assert!(pt.props.keys().eq(t.props.keys()), "{:?}", t.labels);
            // Mandatory/optional flags preserved.
            for (key, spec) in &t.props {
                assert_eq!(
                    pt.props[key].is_mandatory(pt.instance_count),
                    spec.is_mandatory(t.instance_count),
                    "constraint flip on {key}"
                );
                // Kinds preserved.
                assert_eq!(pt.props[key].kind, spec.kind, "kind flip on {key}");
            }
        }
        // Endpoints preserved.
        for t in &schema.edge_types {
            let p = parsed.edge_type_by_labels(&t.labels).expect("edge type");
            assert_eq!(parsed.edge_types[p].endpoints, t.endpoints);
            // Cardinality class preserved.
            assert_eq!(
                parsed.edge_types[p].cardinality.map(|c| c.class()),
                t.cardinality.map(|c| c.class())
            );
        }
    }

    #[test]
    fn loose_round_trip_preserves_keys_without_kinds() {
        let schema = sample_schema();
        let text = pg_schema_loose(&schema, "RT");
        let (parsed, mode) = parse_pg_schema(&text).expect("parse back");
        assert_eq!(mode, ParsedMode::Loose);
        let person = parsed
            .node_type_by_labels(&crate::label_set(&["Person"]))
            .unwrap();
        let t = &parsed.node_types[person];
        assert!(t.props.contains_key("name"));
        assert!(t.props.values().all(|s| s.kind.is_none()));
    }

    #[test]
    fn multilabel_round_trip() {
        let mut b = GraphBuilder::new();
        b.add_node(&["Person", "Student"], &[("id", Value::Int(1))]);
        b.add_node(&["Person", "Student"], &[("id", Value::Int(2))]);
        let schema = Discoverer::new(PipelineConfig::elsh_adaptive())
            .discover(&b.finish())
            .schema;
        let text = pg_schema_strict(&schema, "ML");
        let (parsed, _) = parse_pg_schema(&text).unwrap();
        assert!(parsed
            .node_type_by_labels(&crate::label_set(&["Person", "Student"]))
            .is_some());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_pg_schema("what is this").is_err());
        assert!(parse_pg_schema("CREATE GRAPH TYPE X MEDIUM {\n}").is_err());
        let bad_kind = "CREATE GRAPH TYPE X STRICT {\n  (A: A {x BLOB}),\n}";
        let e = parse_pg_schema(bad_kind).unwrap_err();
        assert!(e.message.contains("unknown data type"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parses_any_endpoints() {
        let text = "CREATE GRAPH TYPE X STRICT {\n  (:ANY) -[E: E]-> (:B),\n}";
        let (parsed, _) = parse_pg_schema(text).unwrap();
        let t = &parsed.edge_types[0];
        let (src, tgt) = t.endpoints.iter().next().unwrap();
        assert!(src.is_empty());
        assert!(tgt.contains("B"));
    }

    #[test]
    fn error_display() {
        let e = ParseError {
            line: 7,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "line 7: boom");
    }
}
