//! Deletion handling — the paper's explicit future work ("Handling updates
//! and deletions is left for future work", §4.6) — implemented here as an
//! extension.
//!
//! Because every type carries aggregate statistics (instance counts,
//! per-property occurrence counts, member lists), removing a batch of
//! elements is a local update: decrement the counts, drop the members,
//! delete types that become empty, and re-derive the statistics that are
//! not decrementable (datatype kinds are lattice joins, so they are
//! recomputed by rescanning only the *affected* types' remaining members;
//! likewise cardinalities and edge endpoints).
//!
//! Retraction deliberately breaks the monotone chain of §4.6 — that is its
//! purpose — but it preserves all the §4.7 soundness guarantees for the
//! remaining data, which the tests verify.

use crate::postprocess::infer_kind_of_values;
use crate::schema::{Cardinality, SchemaGraph};
use pg_hive_graph::{EdgeId, GraphBatch, NodeId, PropertyGraph};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Outcome counters of a retraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetractionStats {
    /// Nodes whose contribution was removed.
    pub nodes_removed: usize,
    /// Edges whose contribution was removed.
    pub edges_removed: usize,
    /// Node types that lost their last instance and were dropped.
    pub node_types_dropped: usize,
    /// Edge types that lost their last instance and were dropped.
    pub edge_types_dropped: usize,
}

/// Remove the elements of `batch` from `schema`. The elements must still be
/// readable from `g` (retraction happens *before* the store forgets them —
/// the usual change-data-capture ordering).
///
/// Elements that are not members of any type (e.g. never discovered) are
/// ignored.
pub fn retract_batch(
    schema: &mut SchemaGraph,
    g: &PropertyGraph,
    batch: &GraphBatch,
) -> RetractionStats {
    let mut stats = RetractionStats::default();

    // --- nodes ---
    let node_set: HashSet<u32> = batch.nodes.iter().map(|n| n.0).collect();
    for t in schema.node_types.iter_mut() {
        let before = t.members.len();
        t.members.retain(|m| !node_set.contains(m));
        let removed = before - t.members.len();
        if removed == 0 {
            continue;
        }
        stats.nodes_removed += removed;
        t.instance_count -= removed as u64;
        // Occurrence counts and kinds are re-derived from the remaining
        // members — work bounded by the affected types' sizes.
        recompute_node_props(t, g);
        t.props.retain(|_, spec| spec.occurrences > 0);
    }
    let before_types = schema.node_types.len();
    schema.node_types.retain(|t| t.instance_count > 0);
    stats.node_types_dropped = before_types - schema.node_types.len();

    // --- edges ---
    let edge_set: HashSet<u32> = batch.edges.iter().map(|e| e.0).collect();
    for t in schema.edge_types.iter_mut() {
        let before = t.members.len();
        t.members.retain(|m| !edge_set.contains(m));
        let removed = before - t.members.len();
        if removed == 0 {
            continue;
        }
        stats.edges_removed += removed;
        t.instance_count -= removed as u64;
        recompute_edge_aggregates(t, g);
    }
    let before_types = schema.edge_types.len();
    schema.edge_types.retain(|t| t.instance_count > 0);
    stats.edge_types_dropped = before_types - schema.edge_types.len();

    stats
}

/// Recompute a node type's property occurrences and kinds from its current
/// members (post-retraction ground truth).
fn recompute_node_props(t: &mut crate::schema::NodeType, g: &PropertyGraph) {
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut values: HashMap<String, Vec<String>> = HashMap::new();
    for &m in &t.members {
        let node = g.node(NodeId(m));
        for (k, v) in &node.props {
            let key = g.key_str(*k).to_string();
            *counts.entry(key.clone()).or_insert(0) += 1;
            values.entry(key).or_default().push(v.lexical());
        }
    }
    for (key, spec) in t.props.iter_mut() {
        spec.occurrences = counts.get(key).copied().unwrap_or(0);
        spec.kind = values
            .get(key)
            .and_then(|vs| infer_kind_of_values(vs.iter().map(String::as_str)));
    }
}

/// Recompute an edge type's property occurrences, kinds, endpoints and
/// cardinality from its current members.
fn recompute_edge_aggregates(t: &mut crate::schema::EdgeType, g: &PropertyGraph) {
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut values: HashMap<String, Vec<String>> = HashMap::new();
    let mut endpoints: BTreeSet<(crate::schema::LabelSet, crate::schema::LabelSet)> =
        BTreeSet::new();
    let mut out: HashMap<u32, HashSet<u32>> = HashMap::new();
    let mut inc: HashMap<u32, HashSet<u32>> = HashMap::new();
    for &m in &t.members {
        let e = g.edge(EdgeId(m));
        for (k, v) in &e.props {
            let key = g.key_str(*k).to_string();
            *counts.entry(key.clone()).or_insert(0) += 1;
            values.entry(key).or_default().push(v.lexical());
        }
        let (src, tgt) = g.edge_endpoint_labels(e);
        endpoints.insert((
            src.iter().map(|&l| g.label_str(l).to_string()).collect(),
            tgt.iter().map(|&l| g.label_str(l).to_string()).collect(),
        ));
        out.entry(e.src.0).or_default().insert(e.tgt.0);
        inc.entry(e.tgt.0).or_default().insert(e.src.0);
    }
    for (key, spec) in t.props.iter_mut() {
        spec.occurrences = counts.get(key).copied().unwrap_or(0);
        spec.kind = values
            .get(key)
            .and_then(|vs| infer_kind_of_values(vs.iter().map(String::as_str)));
    }
    t.props.retain(|_, spec| spec.occurrences > 0);
    t.endpoints = endpoints;
    t.cardinality = if t.members.is_empty() {
        None
    } else {
        Some(Cardinality {
            max_out: out.values().map(HashSet::len).max().unwrap_or(0) as u64,
            max_in: inc.values().map(HashSet::len).max().unwrap_or(0) as u64,
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Discoverer;
    use crate::PipelineConfig;
    use pg_hive_graph::{GraphBuilder, Value};

    fn graph_and_schema() -> (PropertyGraph, SchemaGraph) {
        let mut b = GraphBuilder::new();
        let mut people = Vec::new();
        for i in 0..10 {
            // First half has 'email', so after retracting them it vanishes.
            let mut props = vec![("name", Value::from("p")), ("age", Value::Int(i))];
            if i < 5 {
                props.push(("email", Value::from("e")));
            }
            people.push(b.add_node(&["Person"], &props));
        }
        let org = b.add_node(&["Org"], &[("url", Value::from("u"))]);
        for p in &people {
            b.add_edge(*p, org, &["WORKS_AT"], &[]);
        }
        let g = b.finish();
        let schema = Discoverer::new(PipelineConfig::elsh_adaptive())
            .discover(&g)
            .schema;
        (g, schema)
    }

    #[test]
    fn retract_decrements_counts() {
        let (g, mut schema) = graph_and_schema();
        let batch = GraphBatch {
            nodes: vec![NodeId(0), NodeId(1)],
            edges: vec![EdgeId(0), EdgeId(1)],
        };
        let stats = retract_batch(&mut schema, &g, &batch);
        assert_eq!(stats.nodes_removed, 2);
        assert_eq!(stats.edges_removed, 2);
        let person = schema
            .node_type_by_labels(&crate::label_set(&["Person"]))
            .unwrap();
        assert_eq!(schema.node_types[person].instance_count, 8);
        let works = schema
            .edge_type_by_labels(&crate::label_set(&["WORKS_AT"]))
            .unwrap();
        assert_eq!(schema.edge_types[works].instance_count, 8);
    }

    #[test]
    fn retracting_all_instances_drops_the_type() {
        let (g, mut schema) = graph_and_schema();
        let org_node = NodeId(10);
        let batch = GraphBatch {
            nodes: vec![org_node],
            edges: (0..10).map(EdgeId).collect(),
        };
        let stats = retract_batch(&mut schema, &g, &batch);
        assert_eq!(stats.node_types_dropped, 1, "Org vanished");
        assert_eq!(stats.edge_types_dropped, 1, "WORKS_AT vanished");
        assert!(schema
            .node_type_by_labels(&crate::label_set(&["Org"]))
            .is_none());
    }

    #[test]
    fn property_disappears_when_its_holders_leave() {
        let (g, mut schema) = graph_and_schema();
        // Nodes 0..5 are the only 'email' holders.
        let batch = GraphBatch {
            nodes: (0..5).map(NodeId).collect(),
            edges: vec![],
        };
        retract_batch(&mut schema, &g, &batch);
        let person = schema
            .node_type_by_labels(&crate::label_set(&["Person"]))
            .unwrap();
        assert!(
            !schema.node_types[person].props.contains_key("email"),
            "email should be gone"
        );
        // And the remaining props' mandatory status is still sound.
        let t = &schema.node_types[person];
        assert!(t.props["name"].is_mandatory(t.instance_count));
    }

    #[test]
    fn optional_can_become_mandatory_after_retraction() {
        let (g, mut schema) = graph_and_schema();
        // Before: email optional (5 of 10). Retract the 5 non-holders →
        // email present on all remaining 5 → mandatory.
        let batch = GraphBatch {
            nodes: (5..10).map(NodeId).collect(),
            edges: vec![],
        };
        retract_batch(&mut schema, &g, &batch);
        let person = schema
            .node_type_by_labels(&crate::label_set(&["Person"]))
            .unwrap();
        let t = &schema.node_types[person];
        assert!(t.props["email"].is_mandatory(t.instance_count));
    }

    #[test]
    fn cardinality_shrinks_after_retraction() {
        let (g, mut schema) = graph_and_schema();
        let works = schema
            .edge_type_by_labels(&crate::label_set(&["WORKS_AT"]))
            .unwrap();
        let before = schema.edge_types[works].cardinality.unwrap();
        assert_eq!(before.max_in, 10);
        let batch = GraphBatch {
            nodes: vec![],
            edges: (0..7).map(EdgeId).collect(),
        };
        retract_batch(&mut schema, &g, &batch);
        let after = schema.edge_types[works].cardinality.unwrap();
        assert_eq!(after.max_in, 3);
    }

    #[test]
    fn retracting_unknown_elements_is_a_noop() {
        let (g, mut schema) = graph_and_schema();
        let snapshot = schema.clone();
        let stats = retract_batch(
            &mut schema,
            &g,
            &GraphBatch {
                nodes: vec![],
                edges: vec![],
            },
        );
        assert_eq!(stats, RetractionStats::default());
        assert_eq!(schema, snapshot);
    }

    #[test]
    fn retract_then_readd_restores_counts() {
        let (g, mut schema) = graph_and_schema();
        let original = schema.clone();
        let batch = GraphBatch {
            nodes: vec![NodeId(0)],
            edges: vec![EdgeId(0)],
        };
        retract_batch(&mut schema, &g, &batch);
        // Re-discover just that element and merge it back in.
        let rediscovered = Discoverer::new(PipelineConfig::elsh_adaptive())
            .discover_batches(&g, std::slice::from_ref(&batch));
        crate::merge::merge_schemas(&mut schema, rediscovered.schema, 0.9);
        let person_a = original
            .node_type_by_labels(&crate::label_set(&["Person"]))
            .unwrap();
        let person_b = schema
            .node_type_by_labels(&crate::label_set(&["Person"]))
            .unwrap();
        assert_eq!(
            original.node_types[person_a].instance_count,
            schema.node_types[person_b].instance_count
        );
    }
}
