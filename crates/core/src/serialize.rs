//! Stage (h): schema serialization (§4.5) — PG-Schema (LOOSE and STRICT
//! graph type declarations) and XSD.
//!
//! PG-Schema has no finalized concrete syntax (the paper notes this too);
//! the output follows the `CREATE GRAPH TYPE ... { ... }` style of the
//! PG-Schema paper: LOOSE omits datatypes/constraints and marks the graph
//! type `LOOSE`; STRICT carries `propertyKey TYPE` plus `OPTIONAL` markers
//! and cardinality comments.

use crate::schema::{EdgeType, NodeType, SchemaGraph};
use pg_hive_graph::ValueKind;
use std::fmt::Write;

/// Render the LOOSE PG-Schema declaration: types and property keys only.
pub fn pg_schema_loose(schema: &SchemaGraph, graph_name: &str) -> String {
    render_pg_schema(schema, graph_name, false)
}

/// Render the STRICT PG-Schema declaration with datatypes, OPTIONAL markers
/// and cardinality annotations.
pub fn pg_schema_strict(schema: &SchemaGraph, graph_name: &str) -> String {
    render_pg_schema(schema, graph_name, true)
}

fn render_pg_schema(schema: &SchemaGraph, graph_name: &str, strict: bool) -> String {
    let mut out = String::new();
    let mode = if strict { "STRICT" } else { "LOOSE" };
    let _ = writeln!(out, "CREATE GRAPH TYPE {graph_name}Schema {mode} {{");

    let mut abstract_counter = 0usize;
    for t in &schema.node_types {
        let name = node_type_name(t, &mut abstract_counter);
        let labels = label_spec(&t.labels);
        let _ = write!(out, "  ({name}: {labels}");
        if !t.props.is_empty() {
            let _ = write!(out, " {{");
            let mut first = true;
            for (k, spec) in &t.props {
                if !first {
                    let _ = write!(out, ", ");
                }
                first = false;
                if strict {
                    let opt = if spec.is_mandatory(t.instance_count) {
                        ""
                    } else {
                        "OPTIONAL "
                    };
                    let kind = spec.kind.unwrap_or(ValueKind::String).gql_name();
                    let _ = write!(out, "{opt}{k} {kind}");
                } else {
                    let _ = write!(out, "{k}");
                }
            }
            let _ = write!(out, "}}");
        }
        let _ = writeln!(out, "),");
    }

    for t in &schema.edge_types {
        for (src, tgt) in &t.endpoints {
            let _ = write!(
                out,
                "  (:{}) -[{}: {}",
                label_spec_or_any(src),
                edge_type_name(t),
                label_spec(&t.labels)
            );
            if !t.props.is_empty() {
                let _ = write!(out, " {{");
                let mut first = true;
                for (k, spec) in &t.props {
                    if !first {
                        let _ = write!(out, ", ");
                    }
                    first = false;
                    if strict {
                        let opt = if spec.is_mandatory(t.instance_count) {
                            ""
                        } else {
                            "OPTIONAL "
                        };
                        let kind = spec.kind.unwrap_or(ValueKind::String).gql_name();
                        let _ = write!(out, "{opt}{k} {kind}");
                    } else {
                        let _ = write!(out, "{k}");
                    }
                }
                let _ = write!(out, "}}");
            }
            let _ = write!(out, "]-> (:{})", label_spec_or_any(tgt));
            if strict {
                if let Some(card) = t.cardinality {
                    let _ = write!(out, " /* cardinality {} */", card.class().notation());
                }
            }
            let _ = writeln!(out, ",");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render the schema as an XML Schema Definition (XSD) document: one
/// `xs:complexType` per node/edge type, properties as elements with
/// `minOccurs=0` when optional.
pub fn to_xsd(schema: &SchemaGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    let _ = writeln!(
        out,
        r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">"#
    );
    let mut abstract_counter = 0usize;
    for t in &schema.node_types {
        let name = node_type_name(t, &mut abstract_counter);
        let _ = writeln!(out, r#"  <xs:complexType name="{name}">"#);
        let _ = writeln!(out, "    <xs:sequence>");
        for (k, spec) in &t.props {
            let min = if spec.is_mandatory(t.instance_count) {
                1
            } else {
                0
            };
            let kind = spec.kind.unwrap_or(ValueKind::String).xsd_name();
            let _ = writeln!(
                out,
                r#"      <xs:element name="{k}" type="{kind}" minOccurs="{min}"/>"#
            );
        }
        let _ = writeln!(out, "    </xs:sequence>");
        let _ = writeln!(out, "  </xs:complexType>");
    }
    for t in &schema.edge_types {
        let name = edge_type_name(t);
        let _ = writeln!(out, r#"  <xs:complexType name="Edge{name}">"#);
        let _ = writeln!(out, "    <xs:sequence>");
        for (k, spec) in &t.props {
            let min = if spec.is_mandatory(t.instance_count) {
                1
            } else {
                0
            };
            let kind = spec.kind.unwrap_or(ValueKind::String).xsd_name();
            let _ = writeln!(
                out,
                r#"      <xs:element name="{k}" type="{kind}" minOccurs="{min}"/>"#
            );
        }
        let _ = writeln!(out, "    </xs:sequence>");
        for (src, tgt) in &t.endpoints {
            let _ = writeln!(
                out,
                r#"    <!-- connects {} to {} -->"#,
                label_spec_or_any(src),
                label_spec_or_any(tgt)
            );
        }
        let _ = writeln!(out, "  </xs:complexType>");
    }
    let _ = writeln!(out, "</xs:schema>");
    out
}

fn node_type_name(t: &NodeType, abstract_counter: &mut usize) -> String {
    if t.labels.is_empty() {
        *abstract_counter += 1;
        format!("AbstractType{abstract_counter}")
    } else {
        t.labels
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join("_")
    }
}

fn edge_type_name(t: &EdgeType) -> String {
    if t.labels.is_empty() {
        "AbstractEdge".to_string()
    } else {
        t.labels
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join("_")
    }
}

fn label_spec(labels: &std::collections::BTreeSet<String>) -> String {
    if labels.is_empty() {
        "ABSTRACT".to_string()
    } else {
        labels
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(" & ")
    }
}

fn label_spec_or_any(labels: &std::collections::BTreeSet<String>) -> String {
    if labels.is_empty() {
        "ANY".to_string()
    } else {
        labels
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(" & ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{label_set, Cardinality, PropertySpec};
    use std::collections::BTreeMap;

    fn sample_schema() -> SchemaGraph {
        let mut s = SchemaGraph::new();
        let mut props = BTreeMap::new();
        props.insert(
            "name".to_string(),
            PropertySpec {
                occurrences: 3,
                kind: Some(ValueKind::String),
            },
        );
        props.insert(
            "bday".to_string(),
            PropertySpec {
                occurrences: 2,
                kind: Some(ValueKind::Date),
            },
        );
        s.node_types.push(NodeType {
            labels: label_set(&["Person"]),
            props,
            instance_count: 3,
            members: vec![],
        });
        s.node_types.push(NodeType {
            labels: Default::default(),
            props: BTreeMap::new(),
            instance_count: 1,
            members: vec![],
        });
        let mut eprops = BTreeMap::new();
        eprops.insert(
            "since".to_string(),
            PropertySpec {
                occurrences: 1,
                kind: Some(ValueKind::Date),
            },
        );
        s.edge_types.push(EdgeType {
            labels: label_set(&["KNOWS"]),
            props: eprops,
            endpoints: [(label_set(&["Person"]), label_set(&["Person"]))].into(),
            instance_count: 2,
            members: vec![],
            cardinality: Some(Cardinality {
                max_out: 3,
                max_in: 4,
            }),
        });
        s
    }

    #[test]
    fn loose_omits_datatypes() {
        let text = pg_schema_loose(&sample_schema(), "Social");
        assert!(text.contains("CREATE GRAPH TYPE SocialSchema LOOSE {"));
        assert!(text.contains("(Person: Person {bday, name})"));
        assert!(!text.contains("STRING"));
        assert!(!text.contains("OPTIONAL"));
    }

    #[test]
    fn strict_has_types_constraints_and_cardinality() {
        let text = pg_schema_strict(&sample_schema(), "Social");
        assert!(text.contains("STRICT"));
        assert!(text.contains("name STRING"), "{text}");
        assert!(text.contains("OPTIONAL bday DATE"), "{text}");
        assert!(text.contains("KNOWS"));
        assert!(text.contains("/* cardinality M:N */"), "{text}");
    }

    #[test]
    fn abstract_types_are_named() {
        let text = pg_schema_strict(&sample_schema(), "G");
        assert!(text.contains("AbstractType1"));
    }

    #[test]
    fn xsd_marks_optionality() {
        let xml = to_xsd(&sample_schema());
        assert!(xml.contains(r#"<xs:element name="name" type="xs:string" minOccurs="1"/>"#));
        assert!(xml.contains(r#"<xs:element name="bday" type="xs:date" minOccurs="0"/>"#));
        assert!(xml.contains(r#"<xs:complexType name="EdgeKNOWS">"#));
        assert!(xml.contains("connects Person to Person"));
        assert!(xml.starts_with(r#"<?xml version="1.0""#));
    }

    #[test]
    fn multilabel_name_joins_labels() {
        let mut s = SchemaGraph::new();
        s.node_types.push(NodeType {
            labels: label_set(&["Person", "Student"]),
            props: BTreeMap::new(),
            instance_count: 1,
            members: vec![],
        });
        let text = pg_schema_loose(&s, "G");
        assert!(text.contains("Person_Student: Person & Student"));
    }
}
