//! Pipeline configuration (Algorithm 1's knobs).

use pg_hive_embed::Word2VecConfig;
use pg_hive_lsh::{ElshParams, MinHashParams};

/// Which LSH family clusters the representation vectors (§4.2) — the two
/// PG-HIVE variants evaluated throughout §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMethod {
    /// Euclidean (p-stable) LSH over the hybrid dense vectors.
    Elsh,
    /// MinHash LSH over set representations.
    MinHash,
}

/// How label embeddings are produced (§4.1).
#[derive(Debug, Clone)]
pub enum EmbeddingStrategy {
    /// Deterministic seeded-hash embeddings (fast default; see
    /// `pg-hive-embed` docs for why this preserves the paper's behaviour).
    Hash,
    /// Train a skip-gram Word2Vec on label co-occurrence sentences built
    /// from the batch — the paper's original setup.
    Word2Vec(Word2VecConfig),
}

/// Sampling configuration for datatype inference (§4.4: "optionally we add a
/// flag to infer this information by sampling a small amount of data (e.g.
/// 10% of the properties, and at least 1000)").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Fraction of each property's values to inspect.
    pub fraction: f64,
    /// Minimum number of values to inspect per property.
    pub min_values: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            fraction: 0.1,
            min_values: 1000,
            seed: 0x5A11,
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// LSH family.
    pub method: ClusterMethod,
    /// Fixed ELSH parameters; `None` = adaptive (§4.2).
    pub elsh: Option<ElshParams>,
    /// Fixed MinHash parameters; `None` = adaptive.
    pub minhash: Option<MinHashParams>,
    /// Jaccard merge threshold θ of Algorithm 2 (paper default 0.9).
    pub theta: f64,
    /// Label-embedding strategy and dimension `d`.
    pub embedding: EmbeddingStrategy,
    /// Embedding dimension `d` (paper example uses 5; default 16).
    pub embedding_dim: usize,
    /// Scale factor applied to label embeddings before concatenation with
    /// the binary property vector, so that label disagreement dominates
    /// property noise in the Euclidean distance (implementation choice; the
    /// paper relies on the raw Word2Vec norms).
    pub label_weight: f32,
    /// Run the optional post-processing (constraints, datatypes,
    /// cardinalities — Algorithm 1 lines 7–10) after every batch instead of
    /// only at the end.
    pub post_process_each_batch: bool,
    /// Cluster on deduplicated signatures and broadcast assignments back to
    /// elements (default), instead of hashing every element individually.
    /// Both paths produce the **same clustering** (identical vectors share
    /// every bucket; adaptive parameters are derived over the element
    /// population either way) — `false` exists for equivalence tests and
    /// benchmarking the dedup win.
    pub dedup: bool,
    /// Datatype inference sampling; `None` = full scan.
    pub datatype_sampling: Option<SamplingConfig>,
    /// Master seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            method: ClusterMethod::Elsh,
            elsh: None,
            minhash: None,
            theta: 0.9,
            embedding: EmbeddingStrategy::Hash,
            embedding_dim: 16,
            label_weight: 6.0,
            post_process_each_batch: false,
            dedup: true,
            datatype_sampling: None,
            seed: 0xD15C,
        }
    }
}

impl PipelineConfig {
    /// The paper's ELSH variant with adaptive parameters.
    pub fn elsh_adaptive() -> Self {
        Self::default()
    }

    /// The paper's MinHash variant with default banding.
    pub fn minhash_default() -> Self {
        Self {
            method: ClusterMethod::MinHash,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PipelineConfig::default();
        assert_eq!(c.theta, 0.9);
        assert!(c.elsh.is_none(), "adaptive by default");
        assert!(c.datatype_sampling.is_none(), "full scan by default");
        assert!(c.dedup, "signature dedup on by default");
    }

    #[test]
    fn sampling_defaults_match_section_4_4() {
        let s = SamplingConfig::default();
        assert_eq!(s.fraction, 0.1);
        assert_eq!(s.min_values, 1000);
    }

    #[test]
    fn variant_constructors() {
        assert_eq!(PipelineConfig::elsh_adaptive().method, ClusterMethod::Elsh);
        assert_eq!(
            PipelineConfig::minhash_default().method,
            ClusterMethod::MinHash
        );
    }
}
