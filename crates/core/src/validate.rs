//! Schema validation: check a property graph against a (discovered or
//! hand-written) schema graph.
//!
//! The paper's motivation for schema discovery is downstream "integration,
//! querying, and data quality assurance" (§1), and §4.5 distinguishes the
//! two PG-Schema conformance levels:
//!
//! - **LOOSE** — "can be used for flexible data insertions, allowing nodes
//!   and edges to deviate": elements whose label set matches no type are
//!   fine, extra properties are fine; only *known* properties of matched
//!   types are checked for datatype compatibility.
//! - **STRICT** — "demands a rigorous structure": every element must match
//!   a type, mandatory properties must be present, no unknown properties,
//!   datatypes must be compatible, edge endpoints must be declared, and
//!   observed cardinalities must not exceed the schema's bounds.

use crate::postprocess::infer_value_kind;
use crate::schema::{LabelSet, SchemaGraph};
use pg_hive_graph::{
    EdgeId, LabelSetRegistry, NodeId, PropertyGraph, RawGraphSource, RecordBuf, RecordRef,
    StreamError, Value, ValueKind,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Conformance level (§4.5 / PG-Schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationMode {
    /// Flexible insertions: unmatched elements and extra properties pass.
    Loose,
    /// Rigorous structure: every element must match a declared type exactly.
    Strict,
}

/// One conformance violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A node's label set matches no node type (STRICT only).
    UnknownNodeType {
        /// The offending node.
        node: NodeId,
        /// Its resolved label set.
        labels: Vec<String>,
    },
    /// An edge's label set matches no edge type (STRICT only).
    UnknownEdgeType {
        /// The offending edge.
        edge: EdgeId,
        /// Its resolved label set.
        labels: Vec<String>,
    },
    /// A mandatory property is absent (STRICT only).
    MissingMandatory {
        /// The offending node, when the element is a node.
        node: Option<NodeId>,
        /// The offending edge, when the element is an edge.
        edge: Option<EdgeId>,
        /// The missing property key.
        key: String,
    },
    /// A property key is not declared by the matched type (STRICT only).
    UndeclaredProperty {
        /// The offending node, when the element is a node.
        node: Option<NodeId>,
        /// The offending edge, when the element is an edge.
        edge: Option<EdgeId>,
        /// The undeclared property key.
        key: String,
    },
    /// A value's inferred kind is incompatible with the declared kind.
    DatatypeMismatch {
        /// The offending node, when the element is a node.
        node: Option<NodeId>,
        /// The offending edge, when the element is an edge.
        edge: Option<EdgeId>,
        /// The property key whose value mismatched.
        key: String,
        /// The kind the schema declares for the key.
        declared: ValueKind,
        /// The kind inferred from the observed value.
        observed: ValueKind,
    },
    /// An edge connects endpoint label sets the type does not declare
    /// (STRICT only).
    UndeclaredEndpoints {
        /// The offending edge.
        edge: EdgeId,
        /// Source endpoint's label set.
        src_labels: Vec<String>,
        /// Target endpoint's label set.
        tgt_labels: Vec<String>,
    },
    /// Observed degree exceeds the schema's cardinality bound (STRICT only).
    CardinalityExceeded {
        /// Index of the edge type in `SchemaGraph::edge_types`.
        edge_type: usize,
        /// Largest out-degree observed in the data.
        observed_max_out: u64,
        /// Largest in-degree observed in the data.
        observed_max_in: u64,
        /// The schema's out-degree bound.
        bound_max_out: u64,
        /// The schema's in-degree bound.
        bound_max_in: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnknownNodeType { node, labels } => {
                write!(f, "node #{}: no type for labels {:?}", node.0, labels)
            }
            Violation::UnknownEdgeType { edge, labels } => {
                write!(f, "edge #{}: no type for labels {:?}", edge.0, labels)
            }
            Violation::MissingMandatory { node, edge, key } => match (node, edge) {
                (Some(n), _) => write!(f, "node #{}: missing mandatory '{key}'", n.0),
                (_, Some(e)) => write!(f, "edge #{}: missing mandatory '{key}'", e.0),
                _ => write!(f, "missing mandatory '{key}'"),
            },
            Violation::UndeclaredProperty { node, edge, key } => match (node, edge) {
                (Some(n), _) => write!(f, "node #{}: undeclared property '{key}'", n.0),
                (_, Some(e)) => write!(f, "edge #{}: undeclared property '{key}'", e.0),
                _ => write!(f, "undeclared property '{key}'"),
            },
            Violation::DatatypeMismatch {
                key,
                declared,
                observed,
                ..
            } => write!(
                f,
                "property '{key}': declared {declared:?}, observed {observed:?}"
            ),
            Violation::UndeclaredEndpoints {
                edge,
                src_labels,
                tgt_labels,
            } => write!(
                f,
                "edge #{}: endpoints {:?} -> {:?} not declared",
                edge.0, src_labels, tgt_labels
            ),
            Violation::CardinalityExceeded {
                edge_type,
                observed_max_out,
                observed_max_in,
                bound_max_out,
                bound_max_in,
            } => write!(
                f,
                "edge type #{edge_type}: observed degrees ({observed_max_out},{observed_max_in}) \
                 exceed bounds ({bound_max_out},{bound_max_in})"
            ),
        }
    }
}

/// Validation outcome.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Every violation found, in element order.
    pub violations: Vec<Violation>,
    /// Nodes examined.
    pub nodes_checked: usize,
    /// Edges examined.
    pub edges_checked: usize,
}

impl ValidationReport {
    /// True when the graph conforms to the schema under the chosen mode.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validate `g` against `schema` under `mode`.
pub fn validate(g: &PropertyGraph, schema: &SchemaGraph, mode: ValidationMode) -> ValidationReport {
    let mut report = ValidationReport::default();
    let strict = mode == ValidationMode::Strict;

    // Index types by label set.
    let node_idx: HashMap<LabelSet, usize> = schema
        .node_types
        .iter()
        .enumerate()
        .map(|(i, t)| (t.labels.clone(), i))
        .collect();
    let edge_idx: HashMap<LabelSet, usize> = schema
        .edge_types
        .iter()
        .enumerate()
        .map(|(i, t)| (t.labels.clone(), i))
        .collect();

    for (id, n) in g.nodes() {
        report.nodes_checked += 1;
        let labels: LabelSet = n
            .labels
            .iter()
            .map(|&l| g.label_str(l).to_string())
            .collect();
        let Some(&t) = node_idx.get(&labels) else {
            if strict {
                report.violations.push(Violation::UnknownNodeType {
                    node: id,
                    labels: labels.into_iter().collect(),
                });
            }
            continue;
        };
        let ty = &schema.node_types[t];
        let keys: HashSet<&str> = n.keys().map(|k| g.key_str(k)).collect();
        if strict {
            for (key, spec) in &ty.props {
                if spec.is_mandatory(ty.instance_count) && !keys.contains(key.as_str()) {
                    report.violations.push(Violation::MissingMandatory {
                        node: Some(id),
                        edge: None,
                        key: key.clone(),
                    });
                }
            }
        }
        for (ksym, value) in &n.props {
            let key = g.key_str(*ksym);
            match ty.props.get(key) {
                None => {
                    if strict {
                        report.violations.push(Violation::UndeclaredProperty {
                            node: Some(id),
                            edge: None,
                            key: key.to_string(),
                        });
                    }
                }
                Some(spec) => {
                    if let Some(declared) = spec.kind {
                        let observed = infer_value_kind(&value.lexical());
                        if declared.join(observed) != declared {
                            report.violations.push(Violation::DatatypeMismatch {
                                node: Some(id),
                                edge: None,
                                key: key.to_string(),
                                declared,
                                observed,
                            });
                        }
                    }
                }
            }
        }
    }

    let mut degree_out: HashMap<(usize, u32), HashSet<u32>> = HashMap::new();
    let mut degree_in: HashMap<(usize, u32), HashSet<u32>> = HashMap::new();

    for (id, e) in g.edges() {
        report.edges_checked += 1;
        let labels: LabelSet = e
            .labels
            .iter()
            .map(|&l| g.label_str(l).to_string())
            .collect();
        let Some(&t) = edge_idx.get(&labels) else {
            if strict {
                report.violations.push(Violation::UnknownEdgeType {
                    edge: id,
                    labels: labels.into_iter().collect(),
                });
            }
            continue;
        };
        let ty = &schema.edge_types[t];
        let keys: HashSet<&str> = e.keys().map(|k| g.key_str(k)).collect();
        if strict {
            for (key, spec) in &ty.props {
                if spec.is_mandatory(ty.instance_count) && !keys.contains(key.as_str()) {
                    report.violations.push(Violation::MissingMandatory {
                        node: None,
                        edge: Some(id),
                        key: key.clone(),
                    });
                }
            }
        }
        for (ksym, value) in &e.props {
            let key = g.key_str(*ksym);
            match ty.props.get(key) {
                None => {
                    if strict {
                        report.violations.push(Violation::UndeclaredProperty {
                            node: None,
                            edge: Some(id),
                            key: key.to_string(),
                        });
                    }
                }
                Some(spec) => {
                    if let Some(declared) = spec.kind {
                        let observed = infer_value_kind(&value.lexical());
                        if declared.join(observed) != declared {
                            report.violations.push(Violation::DatatypeMismatch {
                                node: None,
                                edge: Some(id),
                                key: key.to_string(),
                                declared,
                                observed,
                            });
                        }
                    }
                }
            }
        }
        if strict {
            let (src, tgt) = g.edge_endpoint_labels(e);
            let src_set: LabelSet = src.iter().map(|&l| g.label_str(l).to_string()).collect();
            let tgt_set: LabelSet = tgt.iter().map(|&l| g.label_str(l).to_string()).collect();
            if !ty.endpoints.contains(&(src_set.clone(), tgt_set.clone())) {
                report.violations.push(Violation::UndeclaredEndpoints {
                    edge: id,
                    src_labels: src_set.into_iter().collect(),
                    tgt_labels: tgt_set.into_iter().collect(),
                });
            }
            degree_out.entry((t, e.src.0)).or_default().insert(e.tgt.0);
            degree_in.entry((t, e.tgt.0)).or_default().insert(e.src.0);
        }
    }

    if strict {
        for (t, ty) in schema.edge_types.iter().enumerate() {
            let Some(bound) = ty.cardinality else {
                continue;
            };
            let observed_max_out = degree_out
                .iter()
                .filter(|((tt, _), _)| *tt == t)
                .map(|(_, s)| s.len() as u64)
                .max()
                .unwrap_or(0);
            let observed_max_in = degree_in
                .iter()
                .filter(|((tt, _), _)| *tt == t)
                .map(|(_, s)| s.len() as u64)
                .max()
                .unwrap_or(0);
            if observed_max_out > bound.max_out || observed_max_in > bound.max_in {
                report.violations.push(Violation::CardinalityExceeded {
                    edge_type: t,
                    observed_max_out,
                    observed_max_in,
                    bound_max_out: bound.max_out,
                    bound_max_in: bound.max_in,
                });
            }
        }
    }

    report
}

// ---------------------------------------------------------------------------
// Streaming validation: CompiledSchema + Validator
// ---------------------------------------------------------------------------

/// Category of a [`StreamViolation`] — the per-category counter key of the
/// streaming validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// A node's label set matches no declared node type.
    UnknownNodeLabels,
    /// An edge's label set matches no declared edge type.
    UnknownEdgeLabels,
    /// A mandatory property of the matched type is absent.
    MissingKey,
    /// A property the matched type does not declare is present.
    ExtraKey,
    /// An observed value does not fit the declared datatype (lattice
    /// join of declared and observed kind generalizes past declared).
    TypeMismatch,
    /// An edge endpoint id was never declared as a node in the input.
    DanglingEndpoint,
    /// Both endpoints exist but their (source, target) label-set pair is
    /// not declared for the edge type.
    IllTypedEndpoint,
}

impl ViolationKind {
    /// Every category, in canonical (report) order.
    pub const ALL: [ViolationKind; 7] = [
        ViolationKind::UnknownNodeLabels,
        ViolationKind::UnknownEdgeLabels,
        ViolationKind::MissingKey,
        ViolationKind::ExtraKey,
        ViolationKind::TypeMismatch,
        ViolationKind::DanglingEndpoint,
        ViolationKind::IllTypedEndpoint,
    ];

    /// Stable kebab-case name used in reports and jsonl violation events.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::UnknownNodeLabels => "unknown-node-labels",
            ViolationKind::UnknownEdgeLabels => "unknown-edge-labels",
            ViolationKind::MissingKey => "missing-key",
            ViolationKind::ExtraKey => "extra-key",
            ViolationKind::TypeMismatch => "type-mismatch",
            ViolationKind::DanglingEndpoint => "dangling-endpoint",
            ViolationKind::IllTypedEndpoint => "ill-typed-endpoint",
        }
    }

    fn index(self) -> usize {
        ViolationKind::ALL.iter().position(|k| *k == self).unwrap()
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation found by the streaming [`Validator`], identified by the
/// dataset-scoped element id (a node id, or `src->tgt` for an edge) rather
/// than a resident-graph index — streaming validation never materializes
/// the graph, and ids are what the operator can grep the input for.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StreamViolation {
    /// The category.
    pub kind: ViolationKind,
    /// Dataset-scoped element id: the node id, or `src->tgt` for an edge.
    pub element: String,
    /// Human-readable detail: the offending key, label set, or endpoint.
    pub detail: String,
}

impl fmt::Display for StreamViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.kind, self.element, self.detail)
    }
}

/// A node or edge type compiled for per-record checking: expected key set
/// with per-key datatype and cardinality (MANDATORY vs OPTIONAL).
#[derive(Debug)]
struct CompiledType {
    /// Declared keys → inferred datatype (`None` = unconstrained).
    keys: HashMap<String, Option<ValueKind>>,
    /// Keys every instance must carry (`f_T(p) = 1`, §4.4).
    mandatory: Vec<String>,
    /// Rendering of the label set for violation details.
    label_text: String,
}

/// An edge type adds the declared endpoint label-set pairs, as ids into
/// the compiled schema's endpoint-set pool.
#[derive(Debug)]
struct CompiledEdgeType {
    base: CompiledType,
    endpoints: HashSet<(u32, u32)>,
}

/// A finalized [`SchemaGraph`] compiled into symbol-keyed lookup tables
/// for streaming conformance checks: label-set → expected key set, per-key
/// datatype/cardinality, and edge-type endpoint constraints. Compile once,
/// validate any number of inputs (also concurrently — lookups take `&self`).
#[derive(Debug)]
pub struct CompiledSchema {
    /// Label string → dense symbol. Labels absent here appear in no type.
    label_syms: HashMap<String, u32>,
    /// Sorted label-symbol set → node type.
    node_types: HashMap<Box<[u32]>, CompiledType>,
    /// Sorted label-symbol set → edge type (dense index into `edges`).
    edge_types: HashMap<Box<[u32]>, usize>,
    edges: Vec<CompiledEdgeType>,
    /// Sorted label-symbol set → endpoint-set pool id.
    endpoint_sets: HashMap<Box<[u32]>, u32>,
}

impl CompiledSchema {
    /// Compile a finalized schema graph into checking tables.
    pub fn compile(schema: &SchemaGraph) -> Self {
        let mut c = CompiledSchema {
            label_syms: HashMap::new(),
            node_types: HashMap::new(),
            edge_types: HashMap::new(),
            edges: Vec::new(),
            endpoint_sets: HashMap::new(),
        };
        for ty in &schema.node_types {
            let key = c.intern_set(&ty.labels);
            c.node_types
                .insert(key, compile_type(&ty.labels, &ty.props, ty.instance_count));
        }
        for ty in &schema.edge_types {
            let key = c.intern_set(&ty.labels);
            let mut endpoints = HashSet::new();
            for (src, tgt) in &ty.endpoints {
                let s = c.intern_endpoint_set(src);
                let t = c.intern_endpoint_set(tgt);
                endpoints.insert((s, t));
            }
            let idx = c.edges.len();
            c.edges.push(CompiledEdgeType {
                base: compile_type(&ty.labels, &ty.props, ty.instance_count),
                endpoints,
            });
            c.edge_types.insert(key, idx);
        }
        c
    }

    /// Number of compiled node types.
    pub fn node_type_count(&self) -> usize {
        self.node_types.len()
    }

    /// Number of compiled edge types.
    pub fn edge_type_count(&self) -> usize {
        self.edge_types.len()
    }

    /// Intern every label of `labels` and return the sorted symbol set.
    fn intern_set(&mut self, labels: &LabelSet) -> Box<[u32]> {
        let mut syms: Vec<u32> = labels
            .iter()
            .map(|l| {
                let next = self.label_syms.len() as u32;
                *self.label_syms.entry(l.clone()).or_insert(next)
            })
            .collect();
        syms.sort_unstable();
        syms.into_boxed_slice()
    }

    /// Intern an endpoint label set into the endpoint-set pool.
    fn intern_endpoint_set(&mut self, labels: &LabelSet) -> u32 {
        let key = self.intern_set(labels);
        let next = self.endpoint_sets.len() as u32;
        *self.endpoint_sets.entry(key).or_insert(next)
    }

    /// Resolve observed labels (any order) to the sorted symbol set in
    /// `scratch`. `false` when a label appears in no type — the set then
    /// cannot match anything.
    fn resolve<'a>(&self, labels: impl Iterator<Item = &'a str>, scratch: &mut Vec<u32>) -> bool {
        scratch.clear();
        for l in labels {
            match self.label_syms.get(l) {
                Some(&s) => scratch.push(s),
                None => return false,
            }
        }
        scratch.sort_unstable();
        scratch.dedup();
        true
    }

    /// Endpoint-set pool id of an observed (sorted-symbol) label set, if
    /// any edge type declares it.
    fn endpoint_id(&self, scratch: &[u32]) -> Option<u32> {
        self.endpoint_sets.get(scratch).copied()
    }
}

fn compile_type(
    labels: &LabelSet,
    props: &std::collections::BTreeMap<String, crate::schema::PropertySpec>,
    instance_count: u64,
) -> CompiledType {
    let mut keys = HashMap::with_capacity(props.len());
    let mut mandatory = Vec::new();
    for (k, spec) in props {
        keys.insert(k.clone(), spec.kind);
        if spec.is_mandatory(instance_count) {
            mandatory.push(k.clone());
        }
    }
    CompiledType {
        keys,
        mandatory,
        label_text: render_labels(labels.iter().map(String::as_str)),
    }
}

fn render_labels<'a>(labels: impl Iterator<Item = &'a str>) -> String {
    let joined = labels.collect::<Vec<_>>().join(";");
    if joined.is_empty() {
        "(unlabeled)".to_string()
    } else {
        joined
    }
}

/// An edge whose endpoint label sets were not both known when the edge was
/// read — re-checked at every chunk boundary and finally at
/// [`Validator::finish`], riding the registry exactly like the chunked
/// reader's cross-chunk stubs.
#[derive(Debug)]
struct DeferredEdge {
    src: String,
    tgt: String,
    element: String,
    /// Dense index into [`CompiledSchema::edges`].
    ty: usize,
}

/// Outcome of a streaming validation run: per-category counters, a
/// bounded buffer of example violations (sorted canonically), and the
/// element tallies.
#[derive(Debug)]
pub struct StreamValidationReport {
    /// Violation count per category, indexed in [`ViolationKind::ALL`]
    /// order.
    counts: [u64; 7],
    /// Example violations, canonically sorted, truncated to the
    /// validator's example bound.
    pub examples: Vec<StreamViolation>,
    /// Nodes checked.
    pub nodes_checked: u64,
    /// Edges checked.
    pub edges_checked: u64,
    /// Whether the validator stopped early on its violation cap.
    pub stopped_early: bool,
}

impl StreamValidationReport {
    /// Total violations across all categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Violation count for one category.
    pub fn count(&self, kind: ViolationKind) -> u64 {
        self.counts[kind.index()]
    }

    /// `(category, count)` pairs for every non-empty category, in
    /// canonical order.
    pub fn by_category(&self) -> Vec<(ViolationKind, u64)> {
        ViolationKind::ALL
            .iter()
            .map(|&k| (k, self.count(k)))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// No violations at all?
    pub fn is_valid(&self) -> bool {
        self.total() == 0
    }
}

/// Streaming conformance checker: folds [`RawGraphSource`] records through
/// a [`CompiledSchema`] with O(chunk) residency. Only the id → label-set
/// registry (shared with the chunked reader) and the deferred-edge buffer
/// persist across records; the graph itself is never materialized.
///
/// Shard-parallel validation mirrors sharded discovery: give each shard
/// its own `Validator` over the same `CompiledSchema`, then fold the
/// shards together with [`Validator::merge`] and call
/// [`Validator::finish`] once on the root — deferred cross-file edges
/// resolve against the merged registry, so the final violation multiset is
/// independent of the partition.
#[derive(Debug)]
pub struct Validator<'a> {
    schema: &'a CompiledSchema,
    registry: LabelSetRegistry,
    deferred: Vec<DeferredEdge>,
    counts: [u64; 7],
    examples: Vec<StreamViolation>,
    max_examples: usize,
    max_violations: Option<u64>,
    nodes_checked: u64,
    edges_checked: u64,
    stopped_early: bool,
    scratch: Vec<u32>,
    seen_keys: Vec<String>,
}

/// Default bound on the example buffer.
pub const DEFAULT_MAX_EXAMPLES: usize = 50;

impl<'a> Validator<'a> {
    /// Fresh validator over a compiled schema.
    pub fn new(schema: &'a CompiledSchema) -> Self {
        Validator {
            schema,
            registry: LabelSetRegistry::default(),
            deferred: Vec::new(),
            counts: [0; 7],
            examples: Vec::new(),
            max_examples: DEFAULT_MAX_EXAMPLES,
            max_violations: None,
            nodes_checked: 0,
            edges_checked: 0,
            stopped_early: false,
            scratch: Vec::new(),
            seen_keys: Vec::new(),
        }
    }

    /// Override the example-buffer bound (`usize::MAX` keeps every
    /// violation — used by `--report` and the injection harness).
    pub fn with_max_examples(mut self, max: usize) -> Self {
        self.max_examples = max;
        self
    }

    /// Stop reading input once this many violations have been counted
    /// (early exit; deferred endpoint checks still run at `finish`).
    pub fn with_max_violations(mut self, max: u64) -> Self {
        self.max_violations = Some(max);
        self
    }

    /// Violations counted so far.
    pub fn violation_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Elements checked so far (nodes + edges).
    pub fn elements_checked(&self) -> u64 {
        self.nodes_checked + self.edges_checked
    }

    /// Fold every record of `source` through the checker. `chunk_size`
    /// sets how often deferred edges are re-resolved against the registry
    /// (bounding the deferred buffer for forward-referencing inputs);
    /// `on_chunk` fires at each boundary with (chunk index, elements so
    /// far). Returns `false` when the run stopped early on the violation
    /// cap.
    pub fn validate_source<S: RawGraphSource + ?Sized>(
        &mut self,
        source: &mut S,
        chunk_size: usize,
        mut on_chunk: impl FnMut(u64, u64),
    ) -> Result<bool, StreamError> {
        let chunk = chunk_size.max(1) as u64;
        let mut buf = RecordBuf::new();
        let mut in_chunk = 0u64;
        let mut chunk_no = 0u64;
        while source.read_record(&mut buf)? {
            self.check_buf(&buf);
            in_chunk += 1;
            if in_chunk == chunk {
                self.resolve_deferred(false);
                chunk_no += 1;
                on_chunk(chunk_no, self.elements_checked());
                in_chunk = 0;
            }
            if let Some(max) = self.max_violations {
                if self.violation_count() >= max {
                    self.stopped_early = true;
                    return Ok(false);
                }
            }
        }
        if in_chunk > 0 {
            self.resolve_deferred(false);
            chunk_no += 1;
            on_chunk(chunk_no, self.elements_checked());
        }
        Ok(true)
    }

    /// Check the record currently in `buf`.
    pub fn check_buf(&mut self, buf: &RecordBuf) {
        match buf.view() {
            RecordRef::Node { .. } => {
                // Register id → label set first: endpoint checks of edges
                // (this chunk or a later one) resolve against the registry.
                self.registry.insert_record(buf);
            }
            RecordRef::Edge { .. } => {}
        }
        match buf.view() {
            RecordRef::Node { id, labels, props } => {
                self.nodes_checked += 1;
                let resolved = self.schema.resolve(labels.iter(), &mut self.scratch);
                let ty = if resolved {
                    self.schema.node_types.get(self.scratch.as_slice())
                } else {
                    None
                };
                let Some(ty) = ty else {
                    let detail = format!("label set {{{}}}", render_labels(labels.iter()));
                    self.emit(ViolationKind::UnknownNodeLabels, id.to_string(), detail);
                    return;
                };
                check_props(
                    ty,
                    id,
                    props.iter(),
                    &mut self.seen_keys,
                    &mut self.counts,
                    &mut self.examples,
                    self.max_examples,
                );
            }
            RecordRef::Edge {
                src,
                tgt,
                labels,
                props,
            } => {
                self.edges_checked += 1;
                let element = format!("{src}->{tgt}");
                let resolved = self.schema.resolve(labels.iter(), &mut self.scratch);
                let idx = if resolved {
                    self.schema.edge_types.get(self.scratch.as_slice()).copied()
                } else {
                    None
                };
                let Some(idx) = idx else {
                    let detail = format!("label set {{{}}}", render_labels(labels.iter()));
                    self.emit(ViolationKind::UnknownEdgeLabels, element, detail);
                    return;
                };
                check_props(
                    &self.schema.edges[idx].base,
                    &element,
                    props.iter(),
                    &mut self.seen_keys,
                    &mut self.counts,
                    &mut self.examples,
                    self.max_examples,
                );
                if self.registry.label_set(src).is_some() && self.registry.label_set(tgt).is_some()
                {
                    self.check_endpoints(src.to_string(), tgt.to_string(), element, idx);
                } else {
                    // One or both endpoints not yet declared: defer, like
                    // the chunked reader's cross-chunk stubs.
                    self.deferred.push(DeferredEdge {
                        src: src.to_string(),
                        tgt: tgt.to_string(),
                        element,
                        ty: idx,
                    });
                }
            }
        }
    }

    /// Endpoint conformance for an edge whose endpoints are both
    /// registered.
    fn check_endpoints(&mut self, src: String, tgt: String, element: String, ty: usize) {
        let sid = self.endpoint_set_id(&src);
        let tid = self.endpoint_set_id(&tgt);
        let declared = match (sid, tid) {
            (Some(s), Some(t)) => self.schema.edges[ty].endpoints.contains(&(s, t)),
            _ => false,
        };
        if !declared {
            let s = render_labels(self.registry.label_set(&src).unwrap().iter().map(|l| &**l));
            let t = render_labels(self.registry.label_set(&tgt).unwrap().iter().map(|l| &**l));
            let detail = format!(
                "endpoint labels {{{s}}} -> {{{t}}} not declared for {}",
                self.schema.edges[ty].base.label_text
            );
            self.emit(ViolationKind::IllTypedEndpoint, element, detail);
        }
    }

    /// Endpoint-set pool id of a registered node id's label set.
    fn endpoint_set_id(&mut self, id: &str) -> Option<u32> {
        let labels = self.registry.label_set(id)?;
        // Inline resolve: borrow of registry forbids self.schema.resolve
        // into self.scratch while labels is alive, so go through a local.
        let mut syms = Vec::with_capacity(labels.len());
        for l in labels {
            syms.push(*self.schema.label_syms.get(l.as_str())?);
        }
        syms.sort_unstable();
        syms.dedup();
        self.schema.endpoint_id(&syms)
    }

    /// Re-check deferred edges against the registry. With `finality`,
    /// still-unresolved endpoints become [`ViolationKind::DanglingEndpoint`]
    /// violations (one per edge, naming every missing id).
    fn resolve_deferred(&mut self, finality: bool) {
        let pending = std::mem::take(&mut self.deferred);
        for edge in pending {
            let src_known = self.registry.label_set(&edge.src).is_some();
            let tgt_known = self.registry.label_set(&edge.tgt).is_some();
            if src_known && tgt_known {
                self.check_endpoints(edge.src, edge.tgt, edge.element, edge.ty);
            } else if finality {
                let mut missing: Vec<&str> = Vec::new();
                if !src_known {
                    missing.push(&edge.src);
                }
                if !tgt_known {
                    missing.push(&edge.tgt);
                }
                let detail = format!("undeclared endpoint id(s): {}", missing.join(", "));
                self.emit(
                    ViolationKind::DanglingEndpoint,
                    edge.element.clone(),
                    detail,
                );
            } else {
                self.deferred.push(edge);
            }
        }
    }

    /// Fold another shard's validator into this one: registries union,
    /// counters add, deferred edges re-queue against the merged registry.
    pub fn merge(&mut self, other: Validator<'a>) {
        self.registry.merge(&other.registry);
        self.deferred.extend(other.deferred);
        for (i, n) in other.counts.iter().enumerate() {
            self.counts[i] += n;
        }
        self.examples.extend(other.examples);
        self.nodes_checked += other.nodes_checked;
        self.edges_checked += other.edges_checked;
        self.stopped_early |= other.stopped_early;
    }

    /// Finish the run: resolve remaining deferred edges (missing
    /// endpoints become dangling-endpoint violations), sort the example
    /// buffer canonically, and produce the report.
    pub fn finish(mut self) -> StreamValidationReport {
        self.resolve_deferred(true);
        self.examples.sort();
        self.examples.truncate(self.max_examples);
        StreamValidationReport {
            counts: self.counts,
            examples: self.examples,
            nodes_checked: self.nodes_checked,
            edges_checked: self.edges_checked,
            stopped_early: self.stopped_early,
        }
    }

    fn emit(&mut self, kind: ViolationKind, element: String, detail: String) {
        emit_violation(
            &mut self.counts,
            &mut self.examples,
            self.max_examples,
            kind,
            element,
            detail,
        );
    }
}

/// Key-set, per-key datatype, and per-key cardinality (MANDATORY) checks
/// shared by nodes and edges. Free function so `check_buf` can borrow the
/// compiled type and the counter state disjointly.
fn check_props<'v>(
    ty: &CompiledType,
    element: &str,
    props: impl Iterator<Item = (&'v str, &'v Value)>,
    seen: &mut Vec<String>,
    counts: &mut [u64; 7],
    examples: &mut Vec<StreamViolation>,
    max_examples: usize,
) {
    seen.clear();
    for (key, value) in props {
        seen.push(key.to_string());
        match ty.keys.get(key) {
            None => {
                let detail = format!("key '{key}' not declared for {}", ty.label_text);
                emit_violation(
                    counts,
                    examples,
                    max_examples,
                    ViolationKind::ExtraKey,
                    element.to_string(),
                    detail,
                );
            }
            Some(Some(declared)) => {
                // Same inference as discovery and the resident validator:
                // the kind of the lexical form. Non-string values take the
                // (allocating) lexical detour only on the mismatch-free
                // path's rare branch; string values borrow directly.
                let observed = match value {
                    Value::Str(s) => infer_value_kind(s),
                    other => infer_value_kind(&other.lexical()),
                };
                if declared.join(observed) != *declared {
                    let detail = format!(
                        "key '{key}': declared {}, observed {}",
                        declared.gql_name(),
                        observed.gql_name()
                    );
                    emit_violation(
                        counts,
                        examples,
                        max_examples,
                        ViolationKind::TypeMismatch,
                        element.to_string(),
                        detail,
                    );
                }
            }
            Some(None) => {}
        }
    }
    for key in &ty.mandatory {
        if !seen.iter().any(|k| k == key) {
            let detail = format!("mandatory key '{key}' of {} absent", ty.label_text);
            emit_violation(
                counts,
                examples,
                max_examples,
                ViolationKind::MissingKey,
                element.to_string(),
                detail,
            );
        }
    }
}

fn emit_violation(
    counts: &mut [u64; 7],
    examples: &mut Vec<StreamViolation>,
    max_examples: usize,
    kind: ViolationKind,
    element: String,
    detail: String,
) {
    counts[kind.index()] += 1;
    if examples.len() < max_examples {
        examples.push(StreamViolation {
            kind,
            element,
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Discoverer;
    use crate::PipelineConfig;
    use pg_hive_graph::{GraphBuilder, Value};

    fn training_graph() -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let mut people = Vec::new();
        for i in 0..10 {
            people.push(b.add_node(
                &["Person"],
                &[("name", Value::from("p")), ("age", Value::Int(i))],
            ));
        }
        let org = b.add_node(&["Org"], &[("url", Value::from("u"))]);
        for p in &people {
            b.add_edge(*p, org, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        }
        b.finish()
    }

    fn discovered_schema() -> SchemaGraph {
        Discoverer::new(PipelineConfig::elsh_adaptive())
            .discover(&training_graph())
            .schema
    }

    #[test]
    fn training_graph_validates_against_its_own_schema() {
        let schema = discovered_schema();
        let g = training_graph();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict.is_valid(), "violations: {:?}", strict.violations);
        assert_eq!(strict.nodes_checked, 11);
        assert_eq!(strict.edges_checked, 10);
        assert!(validate(&g, &schema, ValidationMode::Loose).is_valid());
    }

    #[test]
    fn unknown_type_fails_strict_passes_loose() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        b.add_node(&["Alien"], &[]);
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(matches!(
            strict.violations[0],
            Violation::UnknownNodeType { .. }
        ));
        assert!(validate(&g, &schema, ValidationMode::Loose).is_valid());
    }

    #[test]
    fn missing_mandatory_property_fails_strict() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        b.add_node(&["Person"], &[("name", Value::from("x"))]); // no age
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingMandatory { key, .. } if key == "age")));
        // LOOSE allows deviation.
        assert!(validate(&g, &schema, ValidationMode::Loose).is_valid());
    }

    #[test]
    fn undeclared_property_fails_strict() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        b.add_node(
            &["Person"],
            &[
                ("name", Value::from("x")),
                ("age", Value::Int(1)),
                ("sneaky", Value::Int(1)),
            ],
        );
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredProperty { key, .. } if key == "sneaky")));
    }

    #[test]
    fn datatype_mismatch_fails_in_both_modes() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        b.add_node(
            &["Person"],
            &[("name", Value::from("x")), ("age", Value::from("forty"))],
        );
        let g = b.finish();
        for mode in [ValidationMode::Strict, ValidationMode::Loose] {
            let r = validate(&g, &schema, mode);
            assert!(
                r.violations
                    .iter()
                    .any(|v| matches!(v, Violation::DatatypeMismatch { key, .. } if key == "age")),
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn undeclared_endpoints_fail_strict() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        let o1 = b.add_node(&["Org"], &[("url", Value::from("a"))]);
        let o2 = b.add_node(&["Org"], &[("url", Value::from("b"))]);
        // WORKS_AT between two Orgs was never declared (Person -> Org only).
        b.add_edge(o1, o2, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredEndpoints { .. })));
    }

    #[test]
    fn cardinality_bound_enforced_in_strict() {
        // Training data: each Person works at exactly one Org (max_out 1).
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        let p = b.add_node(
            &["Person"],
            &[("name", Value::from("x")), ("age", Value::Int(1))],
        );
        let o1 = b.add_node(&["Org"], &[("url", Value::from("a"))]);
        let o2 = b.add_node(&["Org"], &[("url", Value::from("b"))]);
        b.add_edge(p, o1, &["WORKS_AT"], &[("from", Value::Int(1))]);
        b.add_edge(p, o2, &["WORKS_AT"], &[("from", Value::Int(2))]);
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CardinalityExceeded { .. })));
    }

    #[test]
    fn violation_display_is_readable() {
        let v = Violation::MissingMandatory {
            node: Some(NodeId(3)),
            edge: None,
            key: "age".into(),
        };
        assert_eq!(v.to_string(), "node #3: missing mandatory 'age'");
    }

    #[test]
    fn empty_graph_is_always_valid() {
        let schema = discovered_schema();
        let g = PropertyGraph::new();
        assert!(validate(&g, &schema, ValidationMode::Strict).is_valid());
    }

    // --- streaming validator -------------------------------------------

    /// The training graph as pgt wire text, ids p0..p9 / org.
    fn training_pgt() -> String {
        let mut s = String::new();
        for i in 0..10 {
            s.push_str(&format!("N p{i} Person name=p,age={i}\n"));
        }
        s.push_str("N org Org url=u\n");
        for i in 0..10 {
            s.push_str(&format!("E p{i} org WORKS_AT from=2000\n"));
        }
        s
    }

    fn stream_check(text: &str, chunk_size: usize) -> StreamValidationReport {
        let compiled = CompiledSchema::compile(&discovered_schema());
        let mut v = Validator::new(&compiled).with_max_examples(usize::MAX);
        let mut src = pg_hive_graph::stream::pgt::PgtSource::new(text.as_bytes());
        assert!(v.validate_source(&mut src, chunk_size, |_, _| {}).unwrap());
        v.finish()
    }

    #[test]
    fn stream_self_validation_is_clean_for_every_chunk_size() {
        for chunk in 1..=8 {
            let report = stream_check(&training_pgt(), chunk);
            assert!(report.is_valid(), "chunk {chunk}: {:?}", report.examples);
            assert_eq!(report.nodes_checked, 11);
            assert_eq!(report.edges_checked, 10);
        }
    }

    #[test]
    fn stream_edges_before_nodes_resolve_via_deferral() {
        // Edge-first input: every endpoint is a forward reference, so all
        // edges ride the deferred buffer and resolve at chunk boundaries.
        let mut text = String::new();
        for i in 0..10 {
            text.push_str(&format!("E p{i} org WORKS_AT from=2000\n"));
        }
        text.push_str(&training_pgt());
        for chunk in [1, 3, 8] {
            let report = stream_check(&text, chunk);
            assert!(report.is_valid(), "chunk {chunk}: {:?}", report.examples);
            assert_eq!(report.edges_checked, 20);
        }
    }

    #[test]
    fn stream_detects_each_category_with_element_ids() {
        let mut text = training_pgt();
        text.push_str("N z1 Alien tentacles=7\n"); // unknown node labels
        text.push_str("N z2 Person name=x\n"); // missing mandatory age
        text.push_str("N z3 Person name=x,age=5,ghost=1\n"); // extra key
        text.push_str("N z4 Person name=x,age=notanumber\n"); // type mismatch
        text.push_str("E p0 nowhere WORKS_AT from=1\n"); // dangling endpoint
        text.push_str("E org p0 WORKS_AT from=1\n"); // ill-typed endpoints
        text.push_str("E p0 org BOGUS -\n"); // unknown edge labels
        let report = stream_check(&text, 4);
        assert_eq!(report.count(ViolationKind::UnknownNodeLabels), 1);
        assert_eq!(report.count(ViolationKind::MissingKey), 1);
        assert_eq!(report.count(ViolationKind::ExtraKey), 1);
        assert_eq!(report.count(ViolationKind::TypeMismatch), 1);
        assert_eq!(report.count(ViolationKind::DanglingEndpoint), 1);
        assert_eq!(report.count(ViolationKind::IllTypedEndpoint), 1);
        assert_eq!(report.count(ViolationKind::UnknownEdgeLabels), 1);
        assert_eq!(report.total(), 7);
        let find = |k: ViolationKind| {
            report
                .examples
                .iter()
                .find(|v| v.kind == k)
                .map(|v| v.element.clone())
                .unwrap()
        };
        assert_eq!(find(ViolationKind::UnknownNodeLabels), "z1");
        assert_eq!(find(ViolationKind::MissingKey), "z2");
        assert_eq!(find(ViolationKind::ExtraKey), "z3");
        assert_eq!(find(ViolationKind::TypeMismatch), "z4");
        assert_eq!(find(ViolationKind::DanglingEndpoint), "p0->nowhere");
        assert_eq!(find(ViolationKind::IllTypedEndpoint), "org->p0");
        assert_eq!(find(ViolationKind::UnknownEdgeLabels), "p0->org");
    }

    #[test]
    fn sharded_validation_matches_serial_multiset() {
        // Split the input in two, validate each half with its own
        // Validator (fresh registry), merge, finish: the violation
        // multiset must equal the serial run's — cross-shard edges resolve
        // through the merged registry.
        let mut text = training_pgt();
        text.push_str("E p3 nowhere WORKS_AT from=1\n");
        let serial = stream_check(&text, 4);
        let lines: Vec<&str> = text.lines().collect();
        let compiled = CompiledSchema::compile(&discovered_schema());
        for cut in [1, 5, 12, 20] {
            let (a, b) = lines.split_at(cut);
            let mut va = Validator::new(&compiled).with_max_examples(usize::MAX);
            let mut vb = Validator::new(&compiled).with_max_examples(usize::MAX);
            let (ja, jb) = (a.join("\n"), b.join("\n"));
            let mut sa = pg_hive_graph::stream::pgt::PgtSource::new(ja.as_bytes());
            let mut sb = pg_hive_graph::stream::pgt::PgtSource::new(jb.as_bytes());
            va.validate_source(&mut sa, 4, |_, _| {}).unwrap();
            vb.validate_source(&mut sb, 4, |_, _| {}).unwrap();
            va.merge(vb);
            let merged = va.finish();
            assert_eq!(merged.examples, serial.examples, "cut at {cut}");
            assert_eq!(merged.total(), serial.total());
        }
    }

    #[test]
    fn max_violations_stops_early_and_bounded_examples_truncate() {
        let mut text = String::new();
        for i in 0..20 {
            text.push_str(&format!("N a{i} Alien x=1\n"));
        }
        let compiled = CompiledSchema::compile(&discovered_schema());
        let mut v = Validator::new(&compiled)
            .with_max_examples(3)
            .with_max_violations(5);
        let mut src = pg_hive_graph::stream::pgt::PgtSource::new(text.as_bytes());
        let completed = v.validate_source(&mut src, 4, |_, _| {}).unwrap();
        assert!(!completed, "run must stop on the violation cap");
        let report = v.finish();
        assert!(report.stopped_early);
        assert_eq!(report.total(), 5);
        assert_eq!(report.examples.len(), 3, "example buffer stays bounded");
    }
}
