//! Schema validation: check a property graph against a (discovered or
//! hand-written) schema graph.
//!
//! The paper's motivation for schema discovery is downstream "integration,
//! querying, and data quality assurance" (§1), and §4.5 distinguishes the
//! two PG-Schema conformance levels:
//!
//! - **LOOSE** — "can be used for flexible data insertions, allowing nodes
//!   and edges to deviate": elements whose label set matches no type are
//!   fine, extra properties are fine; only *known* properties of matched
//!   types are checked for datatype compatibility.
//! - **STRICT** — "demands a rigorous structure": every element must match
//!   a type, mandatory properties must be present, no unknown properties,
//!   datatypes must be compatible, edge endpoints must be declared, and
//!   observed cardinalities must not exceed the schema's bounds.

use crate::postprocess::infer_value_kind;
use crate::schema::{LabelSet, SchemaGraph};
use pg_hive_graph::{EdgeId, NodeId, PropertyGraph, ValueKind};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Conformance level (§4.5 / PG-Schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationMode {
    /// Flexible insertions: unmatched elements and extra properties pass.
    Loose,
    /// Rigorous structure: every element must match a declared type exactly.
    Strict,
}

/// One conformance violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A node's label set matches no node type (STRICT only).
    UnknownNodeType {
        /// The offending node.
        node: NodeId,
        /// Its resolved label set.
        labels: Vec<String>,
    },
    /// An edge's label set matches no edge type (STRICT only).
    UnknownEdgeType {
        /// The offending edge.
        edge: EdgeId,
        /// Its resolved label set.
        labels: Vec<String>,
    },
    /// A mandatory property is absent (STRICT only).
    MissingMandatory {
        /// The offending node, when the element is a node.
        node: Option<NodeId>,
        /// The offending edge, when the element is an edge.
        edge: Option<EdgeId>,
        /// The missing property key.
        key: String,
    },
    /// A property key is not declared by the matched type (STRICT only).
    UndeclaredProperty {
        /// The offending node, when the element is a node.
        node: Option<NodeId>,
        /// The offending edge, when the element is an edge.
        edge: Option<EdgeId>,
        /// The undeclared property key.
        key: String,
    },
    /// A value's inferred kind is incompatible with the declared kind.
    DatatypeMismatch {
        /// The offending node, when the element is a node.
        node: Option<NodeId>,
        /// The offending edge, when the element is an edge.
        edge: Option<EdgeId>,
        /// The property key whose value mismatched.
        key: String,
        /// The kind the schema declares for the key.
        declared: ValueKind,
        /// The kind inferred from the observed value.
        observed: ValueKind,
    },
    /// An edge connects endpoint label sets the type does not declare
    /// (STRICT only).
    UndeclaredEndpoints {
        /// The offending edge.
        edge: EdgeId,
        /// Source endpoint's label set.
        src_labels: Vec<String>,
        /// Target endpoint's label set.
        tgt_labels: Vec<String>,
    },
    /// Observed degree exceeds the schema's cardinality bound (STRICT only).
    CardinalityExceeded {
        /// Index of the edge type in `SchemaGraph::edge_types`.
        edge_type: usize,
        /// Largest out-degree observed in the data.
        observed_max_out: u64,
        /// Largest in-degree observed in the data.
        observed_max_in: u64,
        /// The schema's out-degree bound.
        bound_max_out: u64,
        /// The schema's in-degree bound.
        bound_max_in: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnknownNodeType { node, labels } => {
                write!(f, "node #{}: no type for labels {:?}", node.0, labels)
            }
            Violation::UnknownEdgeType { edge, labels } => {
                write!(f, "edge #{}: no type for labels {:?}", edge.0, labels)
            }
            Violation::MissingMandatory { node, edge, key } => match (node, edge) {
                (Some(n), _) => write!(f, "node #{}: missing mandatory '{key}'", n.0),
                (_, Some(e)) => write!(f, "edge #{}: missing mandatory '{key}'", e.0),
                _ => write!(f, "missing mandatory '{key}'"),
            },
            Violation::UndeclaredProperty { node, edge, key } => match (node, edge) {
                (Some(n), _) => write!(f, "node #{}: undeclared property '{key}'", n.0),
                (_, Some(e)) => write!(f, "edge #{}: undeclared property '{key}'", e.0),
                _ => write!(f, "undeclared property '{key}'"),
            },
            Violation::DatatypeMismatch {
                key,
                declared,
                observed,
                ..
            } => write!(
                f,
                "property '{key}': declared {declared:?}, observed {observed:?}"
            ),
            Violation::UndeclaredEndpoints {
                edge,
                src_labels,
                tgt_labels,
            } => write!(
                f,
                "edge #{}: endpoints {:?} -> {:?} not declared",
                edge.0, src_labels, tgt_labels
            ),
            Violation::CardinalityExceeded {
                edge_type,
                observed_max_out,
                observed_max_in,
                bound_max_out,
                bound_max_in,
            } => write!(
                f,
                "edge type #{edge_type}: observed degrees ({observed_max_out},{observed_max_in}) \
                 exceed bounds ({bound_max_out},{bound_max_in})"
            ),
        }
    }
}

/// Validation outcome.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Every violation found, in element order.
    pub violations: Vec<Violation>,
    /// Nodes examined.
    pub nodes_checked: usize,
    /// Edges examined.
    pub edges_checked: usize,
}

impl ValidationReport {
    /// True when the graph conforms to the schema under the chosen mode.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validate `g` against `schema` under `mode`.
pub fn validate(g: &PropertyGraph, schema: &SchemaGraph, mode: ValidationMode) -> ValidationReport {
    let mut report = ValidationReport::default();
    let strict = mode == ValidationMode::Strict;

    // Index types by label set.
    let node_idx: HashMap<LabelSet, usize> = schema
        .node_types
        .iter()
        .enumerate()
        .map(|(i, t)| (t.labels.clone(), i))
        .collect();
    let edge_idx: HashMap<LabelSet, usize> = schema
        .edge_types
        .iter()
        .enumerate()
        .map(|(i, t)| (t.labels.clone(), i))
        .collect();

    for (id, n) in g.nodes() {
        report.nodes_checked += 1;
        let labels: LabelSet = n
            .labels
            .iter()
            .map(|&l| g.label_str(l).to_string())
            .collect();
        let Some(&t) = node_idx.get(&labels) else {
            if strict {
                report.violations.push(Violation::UnknownNodeType {
                    node: id,
                    labels: labels.into_iter().collect(),
                });
            }
            continue;
        };
        let ty = &schema.node_types[t];
        let keys: HashSet<&str> = n.keys().map(|k| g.key_str(k)).collect();
        if strict {
            for (key, spec) in &ty.props {
                if spec.is_mandatory(ty.instance_count) && !keys.contains(key.as_str()) {
                    report.violations.push(Violation::MissingMandatory {
                        node: Some(id),
                        edge: None,
                        key: key.clone(),
                    });
                }
            }
        }
        for (ksym, value) in &n.props {
            let key = g.key_str(*ksym);
            match ty.props.get(key) {
                None => {
                    if strict {
                        report.violations.push(Violation::UndeclaredProperty {
                            node: Some(id),
                            edge: None,
                            key: key.to_string(),
                        });
                    }
                }
                Some(spec) => {
                    if let Some(declared) = spec.kind {
                        let observed = infer_value_kind(&value.lexical());
                        if declared.join(observed) != declared {
                            report.violations.push(Violation::DatatypeMismatch {
                                node: Some(id),
                                edge: None,
                                key: key.to_string(),
                                declared,
                                observed,
                            });
                        }
                    }
                }
            }
        }
    }

    let mut degree_out: HashMap<(usize, u32), HashSet<u32>> = HashMap::new();
    let mut degree_in: HashMap<(usize, u32), HashSet<u32>> = HashMap::new();

    for (id, e) in g.edges() {
        report.edges_checked += 1;
        let labels: LabelSet = e
            .labels
            .iter()
            .map(|&l| g.label_str(l).to_string())
            .collect();
        let Some(&t) = edge_idx.get(&labels) else {
            if strict {
                report.violations.push(Violation::UnknownEdgeType {
                    edge: id,
                    labels: labels.into_iter().collect(),
                });
            }
            continue;
        };
        let ty = &schema.edge_types[t];
        let keys: HashSet<&str> = e.keys().map(|k| g.key_str(k)).collect();
        if strict {
            for (key, spec) in &ty.props {
                if spec.is_mandatory(ty.instance_count) && !keys.contains(key.as_str()) {
                    report.violations.push(Violation::MissingMandatory {
                        node: None,
                        edge: Some(id),
                        key: key.clone(),
                    });
                }
            }
        }
        for (ksym, value) in &e.props {
            let key = g.key_str(*ksym);
            match ty.props.get(key) {
                None => {
                    if strict {
                        report.violations.push(Violation::UndeclaredProperty {
                            node: None,
                            edge: Some(id),
                            key: key.to_string(),
                        });
                    }
                }
                Some(spec) => {
                    if let Some(declared) = spec.kind {
                        let observed = infer_value_kind(&value.lexical());
                        if declared.join(observed) != declared {
                            report.violations.push(Violation::DatatypeMismatch {
                                node: None,
                                edge: Some(id),
                                key: key.to_string(),
                                declared,
                                observed,
                            });
                        }
                    }
                }
            }
        }
        if strict {
            let (src, tgt) = g.edge_endpoint_labels(e);
            let src_set: LabelSet = src.iter().map(|&l| g.label_str(l).to_string()).collect();
            let tgt_set: LabelSet = tgt.iter().map(|&l| g.label_str(l).to_string()).collect();
            if !ty.endpoints.contains(&(src_set.clone(), tgt_set.clone())) {
                report.violations.push(Violation::UndeclaredEndpoints {
                    edge: id,
                    src_labels: src_set.into_iter().collect(),
                    tgt_labels: tgt_set.into_iter().collect(),
                });
            }
            degree_out.entry((t, e.src.0)).or_default().insert(e.tgt.0);
            degree_in.entry((t, e.tgt.0)).or_default().insert(e.src.0);
        }
    }

    if strict {
        for (t, ty) in schema.edge_types.iter().enumerate() {
            let Some(bound) = ty.cardinality else {
                continue;
            };
            let observed_max_out = degree_out
                .iter()
                .filter(|((tt, _), _)| *tt == t)
                .map(|(_, s)| s.len() as u64)
                .max()
                .unwrap_or(0);
            let observed_max_in = degree_in
                .iter()
                .filter(|((tt, _), _)| *tt == t)
                .map(|(_, s)| s.len() as u64)
                .max()
                .unwrap_or(0);
            if observed_max_out > bound.max_out || observed_max_in > bound.max_in {
                report.violations.push(Violation::CardinalityExceeded {
                    edge_type: t,
                    observed_max_out,
                    observed_max_in,
                    bound_max_out: bound.max_out,
                    bound_max_in: bound.max_in,
                });
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Discoverer;
    use crate::PipelineConfig;
    use pg_hive_graph::{GraphBuilder, Value};

    fn training_graph() -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let mut people = Vec::new();
        for i in 0..10 {
            people.push(b.add_node(
                &["Person"],
                &[("name", Value::from("p")), ("age", Value::Int(i))],
            ));
        }
        let org = b.add_node(&["Org"], &[("url", Value::from("u"))]);
        for p in &people {
            b.add_edge(*p, org, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        }
        b.finish()
    }

    fn discovered_schema() -> SchemaGraph {
        Discoverer::new(PipelineConfig::elsh_adaptive())
            .discover(&training_graph())
            .schema
    }

    #[test]
    fn training_graph_validates_against_its_own_schema() {
        let schema = discovered_schema();
        let g = training_graph();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict.is_valid(), "violations: {:?}", strict.violations);
        assert_eq!(strict.nodes_checked, 11);
        assert_eq!(strict.edges_checked, 10);
        assert!(validate(&g, &schema, ValidationMode::Loose).is_valid());
    }

    #[test]
    fn unknown_type_fails_strict_passes_loose() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        b.add_node(&["Alien"], &[]);
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(matches!(
            strict.violations[0],
            Violation::UnknownNodeType { .. }
        ));
        assert!(validate(&g, &schema, ValidationMode::Loose).is_valid());
    }

    #[test]
    fn missing_mandatory_property_fails_strict() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        b.add_node(&["Person"], &[("name", Value::from("x"))]); // no age
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingMandatory { key, .. } if key == "age")));
        // LOOSE allows deviation.
        assert!(validate(&g, &schema, ValidationMode::Loose).is_valid());
    }

    #[test]
    fn undeclared_property_fails_strict() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        b.add_node(
            &["Person"],
            &[
                ("name", Value::from("x")),
                ("age", Value::Int(1)),
                ("sneaky", Value::Int(1)),
            ],
        );
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredProperty { key, .. } if key == "sneaky")));
    }

    #[test]
    fn datatype_mismatch_fails_in_both_modes() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        b.add_node(
            &["Person"],
            &[("name", Value::from("x")), ("age", Value::from("forty"))],
        );
        let g = b.finish();
        for mode in [ValidationMode::Strict, ValidationMode::Loose] {
            let r = validate(&g, &schema, mode);
            assert!(
                r.violations
                    .iter()
                    .any(|v| matches!(v, Violation::DatatypeMismatch { key, .. } if key == "age")),
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn undeclared_endpoints_fail_strict() {
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        let o1 = b.add_node(&["Org"], &[("url", Value::from("a"))]);
        let o2 = b.add_node(&["Org"], &[("url", Value::from("b"))]);
        // WORKS_AT between two Orgs was never declared (Person -> Org only).
        b.add_edge(o1, o2, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredEndpoints { .. })));
    }

    #[test]
    fn cardinality_bound_enforced_in_strict() {
        // Training data: each Person works at exactly one Org (max_out 1).
        let schema = discovered_schema();
        let mut b = GraphBuilder::new();
        let p = b.add_node(
            &["Person"],
            &[("name", Value::from("x")), ("age", Value::Int(1))],
        );
        let o1 = b.add_node(&["Org"], &[("url", Value::from("a"))]);
        let o2 = b.add_node(&["Org"], &[("url", Value::from("b"))]);
        b.add_edge(p, o1, &["WORKS_AT"], &[("from", Value::Int(1))]);
        b.add_edge(p, o2, &["WORKS_AT"], &[("from", Value::Int(2))]);
        let g = b.finish();
        let strict = validate(&g, &schema, ValidationMode::Strict);
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CardinalityExceeded { .. })));
    }

    #[test]
    fn violation_display_is_readable() {
        let v = Violation::MissingMandatory {
            node: Some(NodeId(3)),
            edge: None,
            key: "age".into(),
        };
        assert_eq!(v.to_string(), "node #3: missing mandatory 'age'");
    }

    #[test]
    fn empty_graph_is_always_valid() {
        let schema = discovered_schema();
        let g = PropertyGraph::new();
        assert!(validate(&g, &schema, ValidationMode::Strict).is_valid());
    }
}
