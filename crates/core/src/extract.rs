//! Stage (d): extracting and merging types — Algorithm 2 (§4.3).
//!
//! Clusters become *candidate types* summarized by their representative
//! pattern `rep(C) = (L, K, R)` (union of member labels, property keys, and
//! endpoint label-set pairs). Candidates are merged into the running schema:
//!
//! 1. labeled candidates merge with the type carrying the **same label
//!    set** (Lemma 1/2 monotone union), else become new types;
//! 2. unlabeled candidates merge with the *labeled* type whose property-key
//!    Jaccard similarity is ≥ θ (best match wins);
//! 3. remaining unlabeled candidates merge with each other under the same
//!    Jaccard rule; whatever is left becomes an ABSTRACT type.

use crate::patterns::jaccard_str;
use crate::schema::{EdgeType, NodeType, PropertySpec, SchemaGraph};
use pg_hive_graph::{EdgeId, NodeId, PropertyGraph};
use pg_hive_lsh::Clustering;
use std::collections::BTreeMap;

/// Build candidate node types from a clustering of `ids`.
pub fn candidate_node_types(
    g: &PropertyGraph,
    ids: &[NodeId],
    clustering: &Clustering,
) -> Vec<NodeType> {
    let mut cands: Vec<NodeType> = (0..clustering.num_clusters)
        .map(|_| NodeType {
            labels: Default::default(),
            props: BTreeMap::new(),
            instance_count: 0,
            members: Vec::new(),
        })
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let c = clustering.assignment[i] as usize;
        let n = g.node(id);
        let t = &mut cands[c];
        t.instance_count += 1;
        t.members.push(id.0);
        for &l in &n.labels {
            t.labels.insert(g.label_str(l).to_string());
        }
        for k in n.keys() {
            t.props
                .entry(g.key_str(k).to_string())
                .or_insert(PropertySpec {
                    occurrences: 0,
                    kind: None,
                })
                .occurrences += 1;
        }
    }
    cands
}

/// Build candidate edge types from a clustering of `ids`.
pub fn candidate_edge_types(
    g: &PropertyGraph,
    ids: &[EdgeId],
    clustering: &Clustering,
) -> Vec<EdgeType> {
    let mut cands: Vec<EdgeType> = (0..clustering.num_clusters)
        .map(|_| EdgeType {
            labels: Default::default(),
            props: BTreeMap::new(),
            endpoints: Default::default(),
            instance_count: 0,
            members: Vec::new(),
            cardinality: None,
        })
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let c = clustering.assignment[i] as usize;
        let e = g.edge(id);
        let t = &mut cands[c];
        t.instance_count += 1;
        t.members.push(id.0);
        for &l in &e.labels {
            t.labels.insert(g.label_str(l).to_string());
        }
        for k in e.keys() {
            t.props
                .entry(g.key_str(k).to_string())
                .or_insert(PropertySpec {
                    occurrences: 0,
                    kind: None,
                })
                .occurrences += 1;
        }
        let (src, tgt) = g.edge_endpoint_labels(e);
        t.endpoints.insert((
            src.iter().map(|&l| g.label_str(l).to_string()).collect(),
            tgt.iter().map(|&l| g.label_str(l).to_string()).collect(),
        ));
    }
    cands
}

/// Algorithm 2 for node candidates: merge into `schema` in place.
pub fn merge_node_candidates(schema: &mut SchemaGraph, cands: Vec<NodeType>, theta: f64) {
    let (labeled, unlabeled): (Vec<_>, Vec<_>) =
        cands.into_iter().partition(|c| !c.labels.is_empty());

    // Lines 2–7: labeled clusters merge on exact label-set equality.
    for cand in labeled {
        match schema.node_type_by_labels(&cand.labels) {
            Some(idx) => schema.node_types[idx].absorb(cand),
            None => schema.node_types.push(cand),
        }
    }

    // Lines 8–11: unlabeled clusters vs labeled types, best Jaccard ≥ θ.
    // `jaccard_str` is total on its domain (∅ vs ∅ is defined as 1.0) and
    // the comparator uses `f64::total_cmp`, so no similarity value — not
    // even a NaN smuggled in by a future refactor — can panic the merge.
    let mut still_unlabeled = Vec::new();
    for cand in unlabeled {
        let cand_keys: std::collections::BTreeSet<String> = cand.props.keys().cloned().collect();
        let best = schema
            .node_types
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.labels.is_empty())
            .map(|(i, t)| {
                (
                    i,
                    jaccard_str(&cand_keys, &t.props.keys().cloned().collect()),
                )
            })
            .filter(|(_, sim)| *sim >= theta)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((idx, _)) => schema.node_types[idx].absorb(cand),
            None => still_unlabeled.push(cand),
        }
    }

    // Lines 12–14: unlabeled vs unlabeled (including pre-existing ABSTRACT
    // types in the schema), then keep the rest as ABSTRACT.
    for cand in still_unlabeled {
        let cand_keys: std::collections::BTreeSet<String> = cand.props.keys().cloned().collect();
        let target = schema
            .node_types
            .iter()
            .enumerate()
            .filter(|(_, t)| t.labels.is_empty())
            .map(|(i, t)| {
                (
                    i,
                    jaccard_str(&cand_keys, &t.props.keys().cloned().collect()),
                )
            })
            .filter(|(_, sim)| *sim >= theta)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match target {
            Some((idx, _)) => schema.node_types[idx].absorb(cand),
            None => schema.node_types.push(cand),
        }
    }
}

/// Algorithm 2 for edge candidates. "We merge edges only by label and get
/// the set of source and target node types to define the connectivity"
/// (§4.3); unlabeled edge clusters go through the same Jaccard fallback as
/// nodes.
pub fn merge_edge_candidates(schema: &mut SchemaGraph, cands: Vec<EdgeType>, theta: f64) {
    let (labeled, unlabeled): (Vec<_>, Vec<_>) =
        cands.into_iter().partition(|c| !c.labels.is_empty());

    for cand in labeled {
        match schema.edge_type_by_labels(&cand.labels) {
            Some(idx) => schema.edge_types[idx].absorb(cand),
            None => schema.edge_types.push(cand),
        }
    }

    let mut still_unlabeled = Vec::new();
    for cand in unlabeled {
        let cand_keys: std::collections::BTreeSet<String> = cand.props.keys().cloned().collect();
        let best = schema
            .edge_types
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.labels.is_empty())
            .map(|(i, t)| {
                (
                    i,
                    jaccard_str(&cand_keys, &t.props.keys().cloned().collect()),
                )
            })
            .filter(|(_, sim)| *sim >= theta)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((idx, _)) => schema.edge_types[idx].absorb(cand),
            None => still_unlabeled.push(cand),
        }
    }

    for cand in still_unlabeled {
        let cand_keys: std::collections::BTreeSet<String> = cand.props.keys().cloned().collect();
        let target = schema
            .edge_types
            .iter()
            .enumerate()
            .filter(|(_, t)| t.labels.is_empty())
            .map(|(i, t)| {
                (
                    i,
                    jaccard_str(&cand_keys, &t.props.keys().cloned().collect()),
                )
            })
            .filter(|(_, sim)| *sim >= theta)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match target {
            Some((idx, _)) => schema.edge_types[idx].absorb(cand),
            None => schema.edge_types.push(cand),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::label_set;
    use pg_hive_graph::{GraphBuilder, Value};

    fn cluster_of(assignment: Vec<u32>) -> Clustering {
        let num = assignment
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        Clustering {
            assignment,
            num_clusters: num,
        }
    }

    fn person_graph() -> (PropertyGraph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(
            &["Person"],
            &[("name", Value::from("a")), ("age", Value::Int(1))],
        );
        let n1 = b.add_node(&["Person"], &[("name", Value::from("b"))]);
        let n2 = b.add_node(&[], &[("name", Value::from("c")), ("age", Value::Int(2))]);
        let n3 = b.add_node(&["Post"], &[("content", Value::from("x"))]);
        let g = b.finish();
        (g, vec![n0, n1, n2, n3])
    }

    #[test]
    fn candidates_summarize_clusters() {
        let (g, ids) = person_graph();
        // Clusters: {n0, n1}, {n2}, {n3}.
        let c = cluster_of(vec![0, 0, 1, 2]);
        let cands = candidate_node_types(&g, &ids, &c);
        assert_eq!(cands.len(), 3);
        assert_eq!(cands[0].labels, label_set(&["Person"]));
        assert_eq!(cands[0].instance_count, 2);
        assert_eq!(cands[0].props["name"].occurrences, 2);
        assert_eq!(cands[0].props["age"].occurrences, 1);
        assert!(cands[1].labels.is_empty());
    }

    #[test]
    fn labeled_candidates_merge_by_label_set() {
        let (g, ids) = person_graph();
        // Two separate Person clusters (structural split) must merge.
        let c = cluster_of(vec![0, 1, 2, 3]);
        let cands = candidate_node_types(&g, &ids, &c);
        let mut schema = SchemaGraph::new();
        merge_node_candidates(&mut schema, cands, 0.9);
        let person = schema.node_type_by_labels(&label_set(&["Person"])).unwrap();
        // Both Person clusters merged, plus the unlabeled n2 whose keys
        // {name, age} exactly match Person's union {name, age}.
        assert_eq!(schema.node_types[person].instance_count, 3);
        let total: u64 = schema.node_types.iter().map(|t| t.instance_count).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn unlabeled_merges_into_best_labeled_match() {
        let (g, ids) = person_graph();
        let c = cluster_of(vec![0, 1, 2, 3]);
        let cands = candidate_node_types(&g, &ids, &c);
        let mut schema = SchemaGraph::new();
        merge_node_candidates(&mut schema, cands, 0.9);
        // Unlabeled {name, age} vs Person {name, age}: J = 1 ≥ 0.9 ⇒ merged.
        let person = schema.node_type_by_labels(&label_set(&["Person"])).unwrap();
        assert_eq!(schema.node_types[person].instance_count, 3);
        // Post stays its own type; no ABSTRACT type remains.
        assert_eq!(schema.node_types.len(), 2);
        assert!(schema.node_types.iter().all(|t| !t.labels.is_empty()));
    }

    #[test]
    fn unmatched_unlabeled_becomes_abstract() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(&["Person"], &[("name", Value::from("a"))]);
        let n1 = b.add_node(&[], &[("weird", Value::Int(1)), ("thing", Value::Int(2))]);
        let g = b.finish();
        let c = cluster_of(vec![0, 1]);
        let cands = candidate_node_types(&g, &[n0, n1], &c);
        let mut schema = SchemaGraph::new();
        merge_node_candidates(&mut schema, cands, 0.9);
        assert_eq!(schema.node_types.len(), 2);
        assert!(schema.node_types.iter().any(|t| t.is_abstract()));
    }

    #[test]
    fn property_less_unlabeled_clusters_merge_without_panic() {
        // Regression: two unlabeled, property-less clusters used to drive
        // the merge comparator through J(∅, ∅); with a 0/0 NaN that
        // `partial_cmp(..).unwrap()` panicked the whole pipeline. J(∅, ∅)
        // is now defined as 1.0 and the comparator is total.
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(&[], &[]);
        let n1 = b.add_node(&[], &[]);
        let g = b.finish();
        let c = cluster_of(vec![0, 1]);
        let cands = candidate_node_types(&g, &[n0, n1], &c);
        let mut schema = SchemaGraph::new();
        merge_node_candidates(&mut schema, cands, 0.9);
        assert_eq!(schema.node_types.len(), 1, "identical empty keysets merge");
        assert_eq!(schema.node_types[0].instance_count, 2);
        assert!(schema.node_types[0].is_abstract());

        // Same path for property-less unlabeled edge clusters.
        let mut b = GraphBuilder::new();
        let x = b.add_node(&["A"], &[]);
        let y = b.add_node(&["B"], &[]);
        b.add_edge(x, y, &[], &[]);
        b.add_edge(y, x, &[], &[]);
        let g = b.finish();
        let ids: Vec<EdgeId> = g.edges().map(|(i, _)| i).collect();
        let c = cluster_of(vec![0, 1]);
        let cands = candidate_edge_types(&g, &ids, &c);
        let mut schema = SchemaGraph::new();
        merge_edge_candidates(&mut schema, cands, 0.9);
        assert_eq!(schema.edge_types.len(), 1);
        assert_eq!(schema.edge_types[0].instance_count, 2);
    }

    #[test]
    fn unlabeled_clusters_merge_with_each_other() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(&[], &[("x", Value::Int(1)), ("y", Value::Int(2))]);
        let n1 = b.add_node(&[], &[("x", Value::Int(3)), ("y", Value::Int(4))]);
        let g = b.finish();
        let c = cluster_of(vec![0, 1]);
        let cands = candidate_node_types(&g, &[n0, n1], &c);
        let mut schema = SchemaGraph::new();
        merge_node_candidates(&mut schema, cands, 0.9);
        assert_eq!(schema.node_types.len(), 1);
        assert_eq!(schema.node_types[0].instance_count, 2);
        assert!(schema.node_types[0].is_abstract());
    }

    #[test]
    fn theta_controls_unlabeled_merging() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(&["T"], &[("a", Value::Int(1)), ("b", Value::Int(1))]);
        let n1 = b.add_node(&[], &[("a", Value::Int(1)), ("c", Value::Int(1))]);
        let g = b.finish();
        let c = cluster_of(vec![0, 1]);
        // J({a,b},{a,c}) = 1/3.
        let mut strict = SchemaGraph::new();
        merge_node_candidates(&mut strict, candidate_node_types(&g, &[n0, n1], &c), 0.9);
        assert_eq!(strict.node_types.len(), 2);
        let mut loose = SchemaGraph::new();
        merge_node_candidates(&mut loose, candidate_node_types(&g, &[n0, n1], &c), 0.3);
        assert_eq!(loose.node_types.len(), 1);
    }

    #[test]
    fn edge_candidates_collect_endpoints() {
        let mut b = GraphBuilder::new();
        let p = b.add_node(&["Person"], &[]);
        let o = b.add_node(&["Org"], &[]);
        let pl = b.add_node(&["Place"], &[]);
        b.add_edge(o, pl, &["LOCATED_IN"], &[]);
        b.add_edge(p, pl, &["LOCATED_IN"], &[("from", Value::Int(2025))]);
        let g = b.finish();
        let ids: Vec<EdgeId> = g.edges().map(|(i, _)| i).collect();
        // Structurally split clusters.
        let c = cluster_of(vec![0, 1]);
        let cands = candidate_edge_types(&g, &ids, &c);
        let mut schema = SchemaGraph::new();
        merge_edge_candidates(&mut schema, cands, 0.9);
        // One LOCATED_IN type with both endpoint pairs (Fig. 1 / Ex. 2).
        assert_eq!(schema.edge_types.len(), 1);
        let t = &schema.edge_types[0];
        assert_eq!(t.endpoints.len(), 2);
        assert_eq!(t.instance_count, 2);
        assert_eq!(t.props["from"].occurrences, 1);
    }

    #[test]
    fn multilabel_sets_are_distinct_types() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(&["Person", "Student"], &[("name", Value::from("x"))]);
        let n1 = b.add_node(&["Person"], &[("name", Value::from("y"))]);
        let g = b.finish();
        let c = cluster_of(vec![0, 1]);
        let cands = candidate_node_types(&g, &[n0, n1], &c);
        let mut schema = SchemaGraph::new();
        merge_node_candidates(&mut schema, cands, 0.9);
        // {Person,Student} ≠ {Person}: two types (PG-Schema semantics).
        assert_eq!(schema.node_types.len(), 2);
    }
}
