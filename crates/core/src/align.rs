//! Semantic label alignment — the paper's future-work item (c): "support
//! integration scenarios when label semantics are not consistent (e.g.,
//! labels in different languages) ... by integrating large language models
//! to semantically align labels across datasets, without relying on exact
//! string matches" (§6).
//!
//! This extension implements the distributional-semantics version with the
//! substrate already in the repository: node types whose label tokens embed
//! close together under a co-occurrence-trained [`Word2Vec`] (synonym labels
//! end up in identical structural contexts — e.g. `Organization` and
//! `Company` both appear as `WORKS_AT` targets) **and** whose property-key
//! sets overlap are merged into one type. Both signals must agree, so
//! structurally different types never merge on embedding noise alone.
//!
//! [`Word2Vec`]: pg_hive_embed::Word2Vec

use crate::patterns::jaccard_str;
use crate::schema::{LabelSet, SchemaGraph};
use pg_hive_embed::{canonical_token, LabelEmbedder};

/// Alignment thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentConfig {
    /// Minimum cosine similarity between the types' label-token embeddings.
    pub cosine_threshold: f32,
    /// Minimum Jaccard similarity between the types' property-key sets.
    pub jaccard_threshold: f64,
}

impl Default for AlignmentConfig {
    fn default() -> Self {
        Self {
            cosine_threshold: 0.6,
            jaccard_threshold: 0.5,
        }
    }
}

/// One alignment decision, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// Label set of the surviving (larger) type.
    pub kept: LabelSet,
    /// Label set of the absorbed type.
    pub merged: LabelSet,
    /// Cosine similarity of the two label embeddings.
    pub cosine: f32,
    /// Property-key Jaccard similarity of the two types.
    pub jaccard: f64,
}

/// Align node types in place: greedily merge label-disjoint type pairs that
/// pass both thresholds (larger type absorbs the smaller). Repeats until a
/// fixpoint so chains (`Org` ~ `Organization` ~ `Company`) collapse fully.
/// Returns the alignments performed, in order.
pub fn align_node_types(
    schema: &mut SchemaGraph,
    embedder: &dyn LabelEmbedder,
    config: &AlignmentConfig,
) -> Vec<Alignment> {
    let mut performed = Vec::new();
    loop {
        let mut best: Option<(usize, usize, f32, f64)> = None;
        for i in 0..schema.node_types.len() {
            for j in (i + 1)..schema.node_types.len() {
                let (a, b) = (&schema.node_types[i], &schema.node_types[j]);
                if a.labels.is_empty() || b.labels.is_empty() || a.labels == b.labels {
                    continue;
                }
                let Some((cos, jac)) = similarity(schema, i, j, embedder) else {
                    continue;
                };
                if cos >= config.cosine_threshold && jac >= config.jaccard_threshold {
                    let better = best.is_none_or(|(_, _, c, _)| cos > c);
                    if better {
                        best = Some((i, j, cos, jac));
                    }
                }
            }
        }
        let Some((i, j, cos, jac)) = best else { break };
        // Larger instance count keeps its identity.
        let (keep, absorb) =
            if schema.node_types[i].instance_count >= schema.node_types[j].instance_count {
                (i, j)
            } else {
                (j, i)
            };
        let merged_labels = schema.node_types[absorb].labels.clone();
        let kept_labels = schema.node_types[keep].labels.clone();
        let removed = schema.node_types.remove(absorb);
        let keep = if absorb < keep { keep - 1 } else { keep };
        schema.node_types[keep].absorb(removed);
        performed.push(Alignment {
            kept: kept_labels,
            merged: merged_labels,
            cosine: cos,
            jaccard: jac,
        });
    }
    performed
}

fn similarity(
    schema: &SchemaGraph,
    i: usize,
    j: usize,
    embedder: &dyn LabelEmbedder,
) -> Option<(f32, f64)> {
    let a = &schema.node_types[i];
    let b = &schema.node_types[j];
    let tok_a = canonical_token(&a.labels.iter().collect::<Vec<_>>())?;
    let tok_b = canonical_token(&b.labels.iter().collect::<Vec<_>>())?;
    let va = embedder.embed(&tok_a);
    let vb = embedder.embed(&tok_b);
    let cos = cosine(&va, &vb);
    let jac = jaccard_str(
        &a.props.keys().cloned().collect(),
        &b.props.keys().cloned().collect(),
    );
    Some((cos, jac))
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{label_set, NodeType, PropertySpec};
    use pg_hive_embed::{Word2Vec, Word2VecConfig};
    use std::collections::BTreeMap;

    fn node_type(labels: &[&str], keys: &[&str], count: u64) -> NodeType {
        NodeType {
            labels: label_set(labels),
            props: keys
                .iter()
                .map(|k| {
                    (
                        k.to_string(),
                        PropertySpec {
                            occurrences: count,
                            kind: None,
                        },
                    )
                })
                .collect::<BTreeMap<_, _>>(),
            instance_count: count,
            members: vec![],
        }
    }

    /// Word2Vec trained on a corpus where Organization and Company share
    /// contexts but Person does not.
    fn synonym_embedder() -> Word2Vec {
        let mut sentences = Vec::new();
        for _ in 0..300 {
            sentences.push(vec!["Person", "WORKS_AT", "Organization"]);
            sentences.push(vec!["Person", "WORKS_AT", "Company"]);
            sentences.push(vec!["Organization", "LOCATED_IN", "City"]);
            sentences.push(vec!["Company", "LOCATED_IN", "City"]);
        }
        Word2Vec::train(&sentences, &Word2VecConfig::default())
    }

    #[test]
    fn synonym_types_merge() {
        let emb = synonym_embedder();
        assert!(
            emb.similarity("Organization", "Company") > 0.6,
            "corpus should make the synonyms similar: {}",
            emb.similarity("Organization", "Company")
        );
        let mut schema = SchemaGraph {
            node_types: vec![
                node_type(&["Organization"], &["name", "url"], 10),
                node_type(&["Company"], &["name", "url"], 4),
                node_type(&["Person"], &["name", "age"], 20),
            ],
            edge_types: vec![],
        };
        let alignments = align_node_types(&mut schema, &emb, &AlignmentConfig::default());
        assert_eq!(alignments.len(), 1, "{alignments:?}");
        assert_eq!(alignments[0].kept, label_set(&["Organization"]));
        assert_eq!(alignments[0].merged, label_set(&["Company"]));
        assert_eq!(schema.node_types.len(), 2);
        // The merged type keeps both labels (Lemma 1 union).
        let merged = schema
            .node_types
            .iter()
            .find(|t| t.labels.contains("Organization"))
            .unwrap();
        assert!(merged.labels.contains("Company"));
        assert_eq!(merged.instance_count, 14);
    }

    #[test]
    fn structurally_different_types_never_merge() {
        let emb = synonym_embedder();
        let mut schema = SchemaGraph {
            node_types: vec![
                node_type(&["Organization"], &["name", "url"], 10),
                // Same embedding neighborhood but disjoint properties.
                node_type(&["Company"], &["ticker", "exchange"], 4),
            ],
            edge_types: vec![],
        };
        let alignments = align_node_types(&mut schema, &emb, &AlignmentConfig::default());
        assert!(alignments.is_empty());
        assert_eq!(schema.node_types.len(), 2);
    }

    #[test]
    fn semantically_distant_types_never_merge() {
        let emb = synonym_embedder();
        let mut schema = SchemaGraph {
            node_types: vec![
                // Same keys, different semantic neighborhoods.
                node_type(&["Person"], &["name", "url"], 10),
                node_type(&["City"], &["name", "url"], 4),
            ],
            edge_types: vec![],
        };
        let cfg = AlignmentConfig {
            cosine_threshold: 0.8,
            ..Default::default()
        };
        let alignments = align_node_types(&mut schema, &emb, &cfg);
        assert!(alignments.is_empty(), "{alignments:?}");
    }

    #[test]
    fn abstract_types_are_ignored() {
        let emb = synonym_embedder();
        let mut schema = SchemaGraph {
            node_types: vec![
                node_type(&[], &["name", "url"], 10),
                node_type(&["Company"], &["name", "url"], 4),
            ],
            edge_types: vec![],
        };
        let alignments = align_node_types(&mut schema, &emb, &AlignmentConfig::default());
        assert!(alignments.is_empty());
    }

    #[test]
    fn empty_schema_is_fine() {
        let emb = synonym_embedder();
        let mut schema = SchemaGraph::new();
        assert!(align_node_types(&mut schema, &emb, &AlignmentConfig::default()).is_empty());
    }
}
