//! Schema merging (§4.6): combine two schema graphs into the least general
//! schema covering both, with the same rules as Algorithm 2 — labeled types
//! merge on equal label sets, unlabeled types merge by Jaccard similarity,
//! leftovers stay ABSTRACT.
//!
//! Since the canonical-core refactor this routes through
//! [`crate::state::SchemaState`]: both inputs are absorbed into one pooled
//! state and re-finalized, so the merge is **order-invariant** —
//! `merge(a, b)` and `merge(b, a)` produce the same canonical schema, and
//! unlabeled-type resolution no longer depends on which input happened to
//! come first.
//!
//! Monotonicity (§4.7): every label, property and endpoint of either input
//! is present in the merged schema — guaranteed by the union-only `absorb`
//! operations (Lemma 1 / Lemma 2).

use crate::schema::SchemaGraph;
use crate::state::SchemaState;

/// Merge `incoming` into `base` in place. `theta` is the Jaccard threshold
/// for unlabeled-type matching (the paper uses 0.9). The result is the
/// canonical finalization of the pooled state of both inputs — symmetric in
/// its arguments up to member-list order.
pub fn merge_schemas(base: &mut SchemaGraph, incoming: SchemaGraph, theta: f64) {
    let mut state = SchemaState::new(theta);
    state.absorb_schema(std::mem::take(base));
    state.absorb_schema(incoming);
    *base = state.finalize();
}

/// Check `sub ⊑ sup`: every label, property key, and edge endpoint of `sub`
/// appears in `sup` (the monotone-chain relation of §4.6). Used by tests
/// and by callers that want to assert incremental soundness.
pub fn is_generalization_of(sup: &SchemaGraph, sub: &SchemaGraph) -> bool {
    // Node side: every label and key of sub must exist somewhere in sup.
    let sup_labels = sup.node_label_universe();
    let sup_keys = sup.node_key_universe();
    for t in &sub.node_types {
        for l in &t.labels {
            if !sup_labels.contains(l.as_str()) {
                return false;
            }
        }
        for k in t.props.keys() {
            if !sup_keys.contains(k.as_str()) {
                return false;
            }
        }
    }
    // Edge side.
    let sup_edge_labels: std::collections::BTreeSet<&str> = sup
        .edge_types
        .iter()
        .flat_map(|t| t.labels.iter().map(String::as_str))
        .collect();
    let sup_edge_keys: std::collections::BTreeSet<&str> = sup
        .edge_types
        .iter()
        .flat_map(|t| t.props.keys().map(String::as_str))
        .collect();
    for t in &sub.edge_types {
        for l in &t.labels {
            if !sup_edge_labels.contains(l.as_str()) {
                return false;
            }
        }
        for k in t.props.keys() {
            if !sup_edge_keys.contains(k.as_str()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{label_set, EdgeType, NodeType, PropertySpec};
    use std::collections::BTreeMap;

    fn node_type(labels: &[&str], keys: &[&str], count: u64) -> NodeType {
        NodeType {
            labels: label_set(labels),
            props: keys
                .iter()
                .map(|k| {
                    (
                        k.to_string(),
                        PropertySpec {
                            occurrences: count,
                            kind: None,
                        },
                    )
                })
                .collect(),
            instance_count: count,
            members: vec![],
        }
    }

    fn schema_with(types: Vec<NodeType>) -> SchemaGraph {
        SchemaGraph {
            node_types: types,
            edge_types: vec![],
        }
    }

    #[test]
    fn merging_same_labels_unifies() {
        let mut s1 = schema_with(vec![node_type(&["Person"], &["name"], 5)]);
        let s2 = schema_with(vec![node_type(&["Person"], &["age"], 3)]);
        merge_schemas(&mut s1, s2, 0.9);
        assert_eq!(s1.node_types.len(), 1);
        let t = &s1.node_types[0];
        assert_eq!(t.instance_count, 8);
        assert!(t.props.contains_key("name") && t.props.contains_key("age"));
    }

    #[test]
    fn merged_schema_generalizes_both_inputs() {
        let s1 = schema_with(vec![
            node_type(&["Person"], &["name"], 5),
            node_type(&["Post"], &["content"], 2),
        ]);
        let s2 = schema_with(vec![
            node_type(&["Person"], &["email"], 1),
            node_type(&["Org"], &["url"], 4),
        ]);
        let mut merged = s1.clone();
        merge_schemas(&mut merged, s2.clone(), 0.9);
        assert!(is_generalization_of(&merged, &s1));
        assert!(is_generalization_of(&merged, &s2));
        assert!(!is_generalization_of(&s1, &merged), "strictly more general");
    }

    #[test]
    fn unlabeled_types_merge_structurally() {
        let mut s1 = schema_with(vec![node_type(&["Person"], &["name", "age"], 5)]);
        let s2 = schema_with(vec![node_type(&[], &["name", "age"], 2)]);
        merge_schemas(&mut s1, s2, 0.9);
        assert_eq!(s1.node_types.len(), 1);
        assert_eq!(s1.node_types[0].instance_count, 7);
    }

    #[test]
    fn dissimilar_unlabeled_stays_abstract() {
        let mut s1 = schema_with(vec![node_type(&["Person"], &["name", "age"], 5)]);
        let s2 = schema_with(vec![node_type(&[], &["weird"], 1)]);
        merge_schemas(&mut s1, s2, 0.9);
        assert_eq!(s1.node_types.len(), 2);
        assert!(s1.node_types.iter().any(|t| t.is_abstract()));
    }

    #[test]
    fn edge_types_merge_with_endpoint_union() {
        let e1 = EdgeType {
            labels: label_set(&["KNOWS"]),
            props: BTreeMap::new(),
            endpoints: [(label_set(&["Person"]), label_set(&["Person"]))].into(),
            instance_count: 2,
            members: vec![],
            cardinality: None,
        };
        let e2 = EdgeType {
            labels: label_set(&["KNOWS"]),
            props: BTreeMap::new(),
            endpoints: [(label_set(&["Person"]), label_set(&["Bot"]))].into(),
            instance_count: 1,
            members: vec![],
            cardinality: None,
        };
        let mut s1 = SchemaGraph {
            node_types: vec![],
            edge_types: vec![e1],
        };
        let s2 = SchemaGraph {
            node_types: vec![],
            edge_types: vec![e2],
        };
        merge_schemas(&mut s1, s2, 0.9);
        assert_eq!(s1.edge_types.len(), 1);
        assert_eq!(s1.edge_types[0].endpoints.len(), 2);
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let s2 = schema_with(vec![node_type(&["A"], &["x"], 1)]);
        let mut s1 = SchemaGraph::new();
        merge_schemas(&mut s1, s2.clone(), 0.9);
        assert_eq!(s1.node_types.len(), 1);
        assert!(is_generalization_of(&s1, &s2));
    }
}
