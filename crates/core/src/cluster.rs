//! Stage (c): LSH clustering of representation vectors (§4.2).

use crate::config::{ClusterMethod, PipelineConfig};
use pg_hive_lsh::{
    adaptive, elsh_cluster, minhash_cluster, AdaptiveConfig, AdaptiveParams, Clustering,
    ElementClass, ElshParams, MinHashParams,
};

/// Outcome of one clustering call, including the parameters that were used
/// (adaptive or fixed) for reporting (Fig. 6 marks the adaptive choice).
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    pub clustering: Clustering,
    /// Adaptive parameters, when the adaptive path was taken.
    pub adaptive: Option<AdaptiveParams>,
}

/// Cluster one element class (nodes or edges) given both representations.
/// Chooses ELSH or MinHash per config; derives parameters adaptively when
/// none are pinned.
pub fn cluster_elements(
    dense: &[Vec<f32>],
    sets: &[Vec<u64>],
    distinct_labels: usize,
    class: ElementClass,
    config: &PipelineConfig,
) -> ClusterOutcome {
    match config.method {
        ClusterMethod::Elsh => {
            let (params, adaptive) = match &config.elsh {
                Some(p) => (p.clone(), None),
                None => {
                    let mut a = adaptive::derive_params(
                        dense,
                        distinct_labels,
                        class,
                        &AdaptiveConfig {
                            seed: config.seed,
                            ..AdaptiveConfig::default()
                        },
                    );
                    // Small batches may contain mostly singleton types, in
                    // which case even the median NN distance is an
                    // inter-type distance and b would over-merge. We know
                    // the geometry of our vectors — label disagreement
                    // costs ≥ label_weight in L2 — so cap the bucket below
                    // that scale.
                    if config.label_weight > 0.0 {
                        let cap = 0.4 * config.label_weight as f64;
                        if a.bucket_width > cap {
                            a.bucket_width = cap;
                        }
                    }
                    (
                        ElshParams {
                            bucket_width: a.bucket_width,
                            tables: a.tables,
                            hashes_per_table: 4,
                            seed: config.seed ^ 0xE15B,
                        },
                        Some(a),
                    )
                }
            };
            ClusterOutcome {
                clustering: elsh_cluster(dense, &params),
                adaptive,
            }
        }
        ClusterMethod::MinHash => {
            let params = match &config.minhash {
                Some(p) => p.clone(),
                None => adaptive_minhash(sets.len(), distinct_labels, class, config.seed),
            };
            ClusterOutcome {
                clustering: minhash_cluster(sets, &params),
                adaptive: None,
            }
        }
    }
}

/// Adaptive MinHash parameters: the paper says MinHash "only requires the
/// number of hash tables T"; we reuse the table-count heuristic (with the
/// set representation there is no distance scale, so `b_base = 1`) and a
/// fixed band width of 4 rows, giving a collision threshold
/// `(1/T)^(1/4) ≈ 0.45–0.55` over the practical `T ∈ [15, 35]` range.
pub fn adaptive_minhash(
    population: usize,
    distinct_labels: usize,
    class: ElementClass,
    seed: u64,
) -> MinHashParams {
    let alpha = adaptive::alpha_for_label_count(distinct_labels);
    let bands = adaptive::tables_heuristic(1.0, alpha, population, class).max(15);
    MinHashParams {
        bands,
        rows_per_band: 4,
        seed: seed ^ 0x314,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    fn labeled_vectors() -> (Vec<Vec<f32>>, Vec<Vec<u64>>) {
        // Two structural groups, well separated in both representations.
        let mut dense = Vec::new();
        let mut sets = Vec::new();
        for i in 0..40 {
            if i % 2 == 0 {
                dense.push(vec![4.0, 0.0, 1.0, 1.0, 0.0]);
                sets.push(vec![1, 2, 3, 10, 11]);
            } else {
                dense.push(vec![0.0, 4.0, 0.0, 0.0, 1.0]);
                sets.push(vec![4, 5, 6, 20, 21]);
            }
        }
        (dense, sets)
    }

    #[test]
    fn elsh_adaptive_separates_groups() {
        let (dense, sets) = labeled_vectors();
        let out = cluster_elements(
            &dense,
            &sets,
            4,
            ElementClass::Nodes,
            &PipelineConfig::elsh_adaptive(),
        );
        assert!(out.adaptive.is_some());
        assert_eq!(out.clustering.num_clusters, 2);
        assert_ne!(out.clustering.assignment[0], out.clustering.assignment[1]);
    }

    #[test]
    fn minhash_adaptive_separates_groups() {
        let (dense, sets) = labeled_vectors();
        let out = cluster_elements(
            &dense,
            &sets,
            4,
            ElementClass::Nodes,
            &PipelineConfig::minhash_default(),
        );
        assert!(out.adaptive.is_none());
        assert_eq!(out.clustering.num_clusters, 2);
    }

    #[test]
    fn fixed_params_bypass_adaptive() {
        let (dense, sets) = labeled_vectors();
        let cfg = PipelineConfig {
            elsh: Some(ElshParams::default()),
            ..PipelineConfig::elsh_adaptive()
        };
        let out = cluster_elements(&dense, &sets, 4, ElementClass::Nodes, &cfg);
        assert!(out.adaptive.is_none());
    }

    #[test]
    fn adaptive_minhash_bands_in_practical_range() {
        let p = adaptive_minhash(1_000_000, 8, ElementClass::Nodes, 1);
        assert!(p.bands >= 15 && p.bands <= 35, "bands = {}", p.bands);
        assert_eq!(p.rows_per_band, 4);
    }

    #[test]
    fn empty_inputs() {
        let out = cluster_elements(
            &[],
            &[],
            0,
            ElementClass::Edges,
            &PipelineConfig::elsh_adaptive(),
        );
        assert_eq!(out.clustering.num_clusters, 0);
    }
}
