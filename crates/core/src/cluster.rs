//! Stage (c): LSH clustering of representation vectors (§4.2), over
//! deduplicated signatures.
//!
//! LSH hashes the **distinct-signature** rows of an [`ElementRepr`] and the
//! resulting assignment is broadcast back to elements through `rep_of`.
//! This is exactly the clustering the naive per-element sweep produces:
//!
//! - identical vectors (or sets) hash into the same bucket in every table,
//!   so collapsing duplicates onto one representative changes no connected
//!   component of the collision graph;
//! - adaptive parameters are derived over the *element population* (the
//!   `rep_of`-aware sampling in [`pg_hive_lsh::adaptive`]), so a skewed
//!   multiplicity distribution influences `μ`, `b`, and `T` the same way
//!   it did before deduplication;
//! - cluster ids are densified by first occurrence, and the first element
//!   of each cluster corresponds to the first distinct row of that cluster,
//!   so even the numbering matches.
//!
//! `PipelineConfig::dedup = false` runs the naive per-element path (used by
//! the equivalence property tests and the benchmark baseline).

use crate::config::{ClusterMethod, PipelineConfig};
use crate::preprocess::ElementRepr;
use pg_hive_lsh::{
    adaptive, elsh_cluster, minhash_cluster, AdaptiveConfig, AdaptiveParams, Clustering,
    ElementClass, ElshParams, MinHashParams, VectorMatrix,
};

/// Outcome of one clustering call, including the parameters that were used
/// (adaptive or fixed) for reporting (Fig. 6 marks the adaptive choice).
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Per-**element** clustering (already broadcast from distinct rows).
    pub clustering: Clustering,
    /// Adaptive parameters, when the adaptive path was taken.
    pub adaptive: Option<AdaptiveParams>,
    /// How many distinct-signature points LSH actually hashed.
    pub hashed_points: usize,
    /// The distinct-level clustering before broadcast, when the dedup path
    /// ran — the unit cached by [`crate::sigcache::SignatureCache`].
    pub distinct: Option<Clustering>,
}

/// Cluster one element class (nodes or edges) from its deduplicated
/// representations. Chooses ELSH or MinHash per config; derives parameters
/// adaptively when none are pinned.
pub fn cluster_elements(
    repr: &ElementRepr,
    class: ElementClass,
    config: &PipelineConfig,
) -> ClusterOutcome {
    if config.dedup {
        cluster_dedup(repr, class, config)
    } else {
        cluster_naive(repr, class, config)
    }
}

/// The fast path: hash distinct signatures, broadcast through `rep_of`.
fn cluster_dedup(
    repr: &ElementRepr,
    class: ElementClass,
    config: &PipelineConfig,
) -> ClusterOutcome {
    match config.method {
        ClusterMethod::Elsh => {
            let (params, adaptive) = elsh_params(
                config,
                &repr.matrix,
                Some(&repr.rep_of),
                repr.distinct_labels,
                class,
            );
            let distinct = elsh_cluster(&repr.matrix, &params);
            ClusterOutcome {
                clustering: distinct.broadcast(&repr.rep_of),
                adaptive,
                hashed_points: repr.distinct(),
                distinct: Some(distinct),
            }
        }
        ClusterMethod::MinHash => {
            let params = minhash_params(config, repr.len(), repr.distinct_labels, class);
            let distinct = minhash_cluster(&repr.sets, &params);
            ClusterOutcome {
                clustering: distinct.broadcast(&repr.rep_of),
                adaptive: None,
                hashed_points: repr.distinct(),
                distinct: Some(distinct),
            }
        }
    }
}

/// The seed's per-element path: expand the representation and hash every
/// element. Same clustering, more work.
fn cluster_naive(
    repr: &ElementRepr,
    class: ElementClass,
    config: &PipelineConfig,
) -> ClusterOutcome {
    match config.method {
        ClusterMethod::Elsh => {
            let matrix = repr.expanded_matrix();
            let (params, adaptive) =
                elsh_params(config, &matrix, None, repr.distinct_labels, class);
            ClusterOutcome {
                clustering: elsh_cluster(&matrix, &params),
                adaptive,
                hashed_points: repr.len(),
                distinct: None,
            }
        }
        ClusterMethod::MinHash => {
            let params = minhash_params(config, repr.len(), repr.distinct_labels, class);
            ClusterOutcome {
                clustering: minhash_cluster(&repr.expanded_sets(), &params),
                adaptive: None,
                hashed_points: repr.len(),
                distinct: None,
            }
        }
    }
}

/// Fixed or adaptive ELSH parameters for the population described by
/// `(matrix, rep_of)`.
fn elsh_params(
    config: &PipelineConfig,
    matrix: &VectorMatrix,
    rep_of: Option<&[u32]>,
    distinct_labels: usize,
    class: ElementClass,
) -> (ElshParams, Option<AdaptiveParams>) {
    match &config.elsh {
        Some(p) => (p.clone(), None),
        None => {
            let mut a = adaptive::derive_params(
                matrix,
                rep_of,
                distinct_labels,
                class,
                &AdaptiveConfig {
                    seed: config.seed,
                    ..AdaptiveConfig::default()
                },
            );
            // Small batches may contain mostly singleton types, in which
            // case even the median NN distance is an inter-type distance
            // and b would over-merge. We know the geometry of our vectors —
            // label disagreement costs ≥ label_weight in L2 — so cap the
            // bucket below that scale.
            if config.label_weight > 0.0 {
                let cap = 0.4 * config.label_weight as f64;
                if a.bucket_width > cap {
                    a.bucket_width = cap;
                }
            }
            (
                ElshParams {
                    bucket_width: a.bucket_width,
                    tables: a.tables,
                    hashes_per_table: 4,
                    seed: config.seed ^ 0xE15B,
                },
                Some(a),
            )
        }
    }
}

fn minhash_params(
    config: &PipelineConfig,
    population: usize,
    distinct_labels: usize,
    class: ElementClass,
) -> MinHashParams {
    match &config.minhash {
        Some(p) => p.clone(),
        None => adaptive_minhash(population, distinct_labels, class, config.seed),
    }
}

/// Adaptive MinHash parameters: the paper says MinHash "only requires the
/// number of hash tables T"; we reuse the table-count heuristic (with the
/// set representation there is no distance scale, so `b_base = 1`) and a
/// fixed band width of 4 rows, giving a collision threshold
/// `(1/T)^(1/4) ≈ 0.45–0.55` over the practical `T ∈ [15, 35]` range.
pub fn adaptive_minhash(
    population: usize,
    distinct_labels: usize,
    class: ElementClass,
    seed: u64,
) -> MinHashParams {
    let alpha = adaptive::alpha_for_label_count(distinct_labels);
    let bands = adaptive::tables_heuristic(1.0, alpha, population, class).max(15);
    MinHashParams {
        bands,
        rows_per_band: 4,
        seed: seed ^ 0x314,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    /// Two structural groups, well separated in both representations, with
    /// each group one distinct signature repeated 20×.
    fn labeled_repr() -> ElementRepr {
        let mut repr = ElementRepr {
            matrix: VectorMatrix::new(5),
            ..ElementRepr::default()
        };
        repr.matrix.push_row(&[4.0, 0.0, 1.0, 1.0, 0.0]);
        repr.sets.push(vec![1, 2, 3, 10, 11]);
        repr.matrix.push_row(&[0.0, 4.0, 0.0, 0.0, 1.0]);
        repr.sets.push(vec![4, 5, 6, 20, 21]);
        for i in 0..40 {
            repr.rep_of.push((i % 2) as u32);
        }
        repr.distinct_labels = 4;
        repr
    }

    #[test]
    fn elsh_adaptive_separates_groups() {
        let out = cluster_elements(
            &labeled_repr(),
            ElementClass::Nodes,
            &PipelineConfig::elsh_adaptive(),
        );
        assert!(out.adaptive.is_some());
        assert_eq!(out.clustering.num_clusters, 2);
        assert_ne!(out.clustering.assignment[0], out.clustering.assignment[1]);
        assert_eq!(out.clustering.assignment.len(), 40);
        assert_eq!(out.hashed_points, 2, "only distinct signatures hashed");
    }

    #[test]
    fn minhash_adaptive_separates_groups() {
        let out = cluster_elements(
            &labeled_repr(),
            ElementClass::Nodes,
            &PipelineConfig::minhash_default(),
        );
        assert!(out.adaptive.is_none());
        assert_eq!(out.clustering.num_clusters, 2);
    }

    #[test]
    fn fixed_params_bypass_adaptive() {
        let cfg = PipelineConfig {
            elsh: Some(ElshParams::default()),
            ..PipelineConfig::elsh_adaptive()
        };
        let out = cluster_elements(&labeled_repr(), ElementClass::Nodes, &cfg);
        assert!(out.adaptive.is_none());
    }

    #[test]
    fn dedup_and_naive_agree_for_both_methods() {
        let repr = labeled_repr();
        for base in [
            PipelineConfig::elsh_adaptive(),
            PipelineConfig::minhash_default(),
        ] {
            let fast = cluster_elements(&repr, ElementClass::Nodes, &base);
            let naive = cluster_elements(
                &repr,
                ElementClass::Nodes,
                &PipelineConfig {
                    dedup: false,
                    ..base
                },
            );
            assert_eq!(fast.clustering, naive.clustering);
            assert!(fast.hashed_points <= naive.hashed_points);
        }
    }

    #[test]
    fn adaptive_minhash_bands_in_practical_range() {
        let p = adaptive_minhash(1_000_000, 8, ElementClass::Nodes, 1);
        assert!(p.bands >= 15 && p.bands <= 35, "bands = {}", p.bands);
        assert_eq!(p.rows_per_band, 4);
    }

    #[test]
    fn empty_inputs() {
        let out = cluster_elements(
            &ElementRepr::default(),
            ElementClass::Edges,
            &PipelineConfig::elsh_adaptive(),
        );
        assert_eq!(out.clustering.num_clusters, 0);
        assert_eq!(out.hashed_points, 0);
    }
}
