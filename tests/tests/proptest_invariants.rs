//! Property-based tests over the core invariants: Lemma 1/2 monotonicity,
//! schema-merge generalization, F1 bounds, LSH determinism, MinHash
//! estimation, and value round-trips.

use pg_hive_core::merge::{is_generalization_of, merge_schemas};
use pg_hive_core::{label_set, NodeType, PropertySpec, SchemaGraph};
use pg_hive_eval::majority_f1;
use pg_hive_graph::Value;
use pg_hive_lsh::minhash::{jaccard, signature};
use pg_hive_lsh::{elsh_cluster, ElshParams, UnionFind, VectorMatrix};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_node_type() -> impl Strategy<Value = NodeType> {
    (
        proptest::collection::vec("[A-E]", 0..3),
        proptest::collection::btree_map("[a-h]", 1u64..20, 0..6),
        1u64..30,
    )
        .prop_map(|(labels, props, count)| {
            let labels_ref: Vec<&str> = labels.iter().map(String::as_str).collect();
            NodeType {
                labels: label_set(&labels_ref),
                props: props
                    .into_iter()
                    .map(|(k, occ)| {
                        (
                            k,
                            PropertySpec {
                                occurrences: occ.min(count),
                                kind: None,
                            },
                        )
                    })
                    .collect::<BTreeMap<_, _>>(),
                instance_count: count,
                members: vec![],
            }
        })
}

fn arb_schema() -> impl Strategy<Value = SchemaGraph> {
    proptest::collection::vec(arb_node_type(), 0..6).prop_map(|mut types| {
        // Deduplicate label sets (the schema invariant extraction maintains).
        types.sort_by(|a, b| a.labels.cmp(&b.labels));
        types.dedup_by(|a, b| a.labels == b.labels && !a.labels.is_empty());
        SchemaGraph {
            node_types: types,
            edge_types: vec![],
        }
    })
}

proptest! {
    #[test]
    fn lemma1_absorb_never_loses_labels_or_keys(a in arb_node_type(), b in arb_node_type()) {
        let mut merged = a.clone();
        merged.absorb(b.clone());
        for l in a.labels.iter().chain(b.labels.iter()) {
            prop_assert!(merged.labels.contains(l));
        }
        for k in a.props.keys().chain(b.props.keys()) {
            prop_assert!(merged.props.contains_key(k));
        }
        prop_assert_eq!(merged.instance_count, a.instance_count + b.instance_count);
        // Occurrence counts are additive.
        for (k, spec) in &merged.props {
            let expect = a.props.get(k).map_or(0, |s| s.occurrences)
                + b.props.get(k).map_or(0, |s| s.occurrences);
            prop_assert_eq!(spec.occurrences, expect);
        }
    }

    #[test]
    fn schema_merge_generalizes_both_inputs(s1 in arb_schema(), s2 in arb_schema()) {
        let mut merged = s1.clone();
        merge_schemas(&mut merged, s2.clone(), 0.9);
        prop_assert!(is_generalization_of(&merged, &s1));
        prop_assert!(is_generalization_of(&merged, &s2));
    }

    #[test]
    fn schema_merge_is_idempotent_on_labeled_types(s in arb_schema()) {
        // Merging a schema into itself must not duplicate labeled types.
        let labeled: Vec<_> = s.node_types.iter().filter(|t| !t.labels.is_empty()).cloned().collect();
        let base = SchemaGraph { node_types: labeled.clone(), edge_types: vec![] };
        let mut merged = base.clone();
        merge_schemas(&mut merged, base.clone(), 0.9);
        prop_assert_eq!(merged.node_types.len(), base.node_types.len());
    }

    #[test]
    fn f1_is_bounded_and_perfect_for_identity(
        truth in proptest::collection::vec(0u32..5, 1..200)
    ) {
        let identity = majority_f1(&truth, &truth);
        prop_assert!((identity.macro_f1 - 1.0).abs() < 1e-12);
        // Arbitrary clusterings stay within [0, 1].
        let coarse: Vec<u32> = truth.iter().map(|_| 0).collect();
        let s = majority_f1(&coarse, &truth);
        prop_assert!((0.0..=1.0).contains(&s.macro_f1));
        prop_assert!((0.0..=1.0).contains(&s.micro_f1));
    }

    #[test]
    fn f1_invariant_under_cluster_relabeling(
        pairs in proptest::collection::vec((0u32..6, 0u32..6), 1..100),
        offset in 1u32..1000
    ) {
        let clusters: Vec<u32> = pairs.iter().map(|(c, _)| *c).collect();
        let truth: Vec<u32> = pairs.iter().map(|(_, t)| *t).collect();
        let renamed: Vec<u32> = clusters.iter().map(|c| c + offset).collect();
        let a = majority_f1(&clusters, &truth);
        let b = majority_f1(&renamed, &truth);
        prop_assert!((a.macro_f1 - b.macro_f1).abs() < 1e-12);
    }

    #[test]
    fn elsh_clusters_are_a_partition(
        points in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 4), 1..60)
    ) {
        let c = elsh_cluster(&VectorMatrix::from_rows(&points), &ElshParams::default());
        prop_assert_eq!(c.assignment.len(), points.len());
        for &a in &c.assignment {
            prop_assert!((a as usize) < c.num_clusters);
        }
        // Identical points always share a cluster.
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if points[i] == points[j] {
                    prop_assert_eq!(c.assignment[i], c.assignment[j]);
                }
            }
        }
    }

    #[test]
    fn minhash_signature_agreement_tracks_jaccard(
        a in proptest::collection::hash_set(0u64..40, 1..25),
        b in proptest::collection::hash_set(0u64..40, 1..25)
    ) {
        let av: Vec<u64> = a.into_iter().collect();
        let bv: Vec<u64> = b.into_iter().collect();
        let k = 600;
        let sa = signature(&av, k, 5);
        let sb = signature(&bv, k, 5);
        let agree = sa.iter().zip(&sb).filter(|(x, y)| x == y).count() as f64 / k as f64;
        let j = jaccard(&av, &bv);
        prop_assert!((agree - j).abs() < 0.15, "agree {agree} vs jaccard {j}");
    }

    #[test]
    fn union_find_components_decrease_monotonically(
        unions in proptest::collection::vec((0usize..30, 0usize..30), 0..60)
    ) {
        let mut uf = UnionFind::new(30);
        let mut prev = uf.components();
        for (a, b) in unions {
            uf.union(a, b);
            let now = uf.components();
            prop_assert!(now == prev || now == prev - 1);
            prop_assert!(uf.connected(a, b));
            prev = now;
        }
    }

    #[test]
    fn value_lexical_round_trip_kind_is_stable(i in any::<i64>(), s in "[a-zA-Z ]{1,20}") {
        let v = Value::Int(i);
        prop_assert_eq!(Value::parse_lexical(&v.lexical()).kind(), v.kind());
        // Strings that don't look like other types stay strings.
        let sv = Value::parse_lexical(&s);
        let reparsed = Value::parse_lexical(&sv.lexical());
        prop_assert_eq!(reparsed.kind(), sv.kind());
    }

    #[test]
    fn noise_injection_only_removes(
        n in 1usize..50,
        removal in 0.0f64..1.0
    ) {
        let mut b = pg_hive_graph::GraphBuilder::new();
        for i in 0..n {
            b.add_node(&["T"], &[("a", Value::Int(i as i64)), ("b", Value::Bool(true))]);
        }
        let mut g = b.finish();
        let before: usize = g.nodes().map(|(_, node)| node.props.len()).sum();
        pg_hive_datasets::inject_noise(&mut g, &pg_hive_datasets::NoiseSpec {
            prop_removal: removal,
            label_keep: 1.0,
            seed: 3,
        });
        let after: usize = g.nodes().map(|(_, node)| node.props.len()).sum();
        prop_assert!(after <= before);
        prop_assert_eq!(g.node_count(), n, "noise never deletes elements");
    }
}
