//! Integration tests for the extension modules: validation, retraction,
//! schema diff, and semantic label alignment — exercised against real
//! pipeline output on generated datasets.

use pg_hive_core::align::{align_node_types, AlignmentConfig};
use pg_hive_core::diff::diff_schemas;
use pg_hive_core::preprocess::label_sentences;
use pg_hive_core::retract::retract_batch;
use pg_hive_core::{validate, Discoverer, PipelineConfig, ValidationMode};
use pg_hive_datasets::integration::integration_scenario;
use pg_hive_datasets::{inject_noise, DatasetId, NoiseSpec};
use pg_hive_embed::{Word2Vec, Word2VecConfig};
use pg_hive_graph::{split_batches, GraphBatch};

#[test]
fn discovered_schema_validates_its_training_data_strictly() {
    for id in [DatasetId::Pole, DatasetId::Ldbc] {
        let d = id.generate(0.05, 41);
        let r = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&d.graph);
        let report = validate(&d.graph, &r.schema, ValidationMode::Strict);
        assert!(
            report.is_valid(),
            "{}: {} violations, first: {:?}",
            id.name(),
            report.violations.len(),
            report.violations.first()
        );
    }
}

#[test]
fn unseen_data_from_same_distribution_validates_loosely() {
    let train = DatasetId::Pole.generate(0.05, 42);
    let test = DatasetId::Pole.generate(0.05, 43); // different seed
    let schema = Discoverer::new(PipelineConfig::elsh_adaptive())
        .discover(&train.graph)
        .schema;
    let report = validate(&test.graph, &schema, ValidationMode::Loose);
    assert!(
        report.is_valid(),
        "loose validation should tolerate fresh same-shape data: {:?}",
        report.violations.first()
    );
}

#[test]
fn noisy_data_fails_strict_validation_against_clean_schema() {
    let clean = DatasetId::Pole.generate(0.05, 44);
    let schema = Discoverer::new(PipelineConfig::elsh_adaptive())
        .discover(&clean.graph)
        .schema;
    let mut noisy = DatasetId::Pole.generate(0.05, 44);
    inject_noise(&mut noisy.graph, &NoiseSpec::grid(40, 100, 44));
    let report = validate(&noisy.graph, &schema, ValidationMode::Strict);
    assert!(
        !report.is_valid(),
        "40% property removal must violate mandatory constraints"
    );
}

#[test]
fn retraction_after_incremental_keeps_schema_sound() {
    let d = DatasetId::Mb6.generate(0.05, 45);
    let mut r = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&d.graph);
    let batches = split_batches(&d.graph, 10, 45);
    // Retract one batch, then validate the *remaining* data still conforms.
    let stats = retract_batch(&mut r.schema, &d.graph, &batches[0]);
    assert!(stats.nodes_removed > 0);
    let remaining = r.schema.node_instances() as usize;
    assert_eq!(remaining, d.graph.node_count() - stats.nodes_removed);
    // Mandatory constraints remain sound over remaining members.
    for t in &r.schema.node_types {
        for (key, spec) in &t.props {
            if spec.is_mandatory(t.instance_count) {
                let sym = d.graph.keys().get(key).unwrap();
                for &m in &t.members {
                    assert!(
                        d.graph.node(pg_hive_graph::NodeId(m)).get(sym).is_some(),
                        "mandatory {key} violated after retraction"
                    );
                }
            }
        }
    }
}

#[test]
fn retract_everything_empties_the_schema() {
    let d = DatasetId::Pole.generate(0.05, 46);
    let mut r = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&d.graph);
    let all = GraphBatch {
        nodes: d.graph.nodes().map(|(id, _)| id).collect(),
        edges: d.graph.edges().map(|(id, _)| id).collect(),
    };
    retract_batch(&mut r.schema, &d.graph, &all);
    assert!(r.schema.node_types.is_empty());
    assert!(r.schema.edge_types.is_empty());
}

#[test]
fn incremental_prefix_diffs_are_monotone_on_real_data() {
    let d = DatasetId::Cord19.generate(0.05, 47);
    let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
    let batches = split_batches(&d.graph, 5, 47);
    let mut prev = None;
    for upto in 1..=5 {
        let r = discoverer.discover_batches(&d.graph, &batches[..upto]);
        if let Some(p) = &prev {
            let diff = diff_schemas(p, &r.schema);
            assert!(diff.is_monotone(), "step {upto}: {diff}");
        }
        prev = Some(r.schema);
    }
}

#[test]
fn alignment_merges_synonym_vocabularies_end_to_end() {
    let d = integration_scenario(200, 48);
    let r = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&d.graph);
    assert_eq!(
        r.schema.node_types.len(),
        6,
        "two vocabularies, pre-alignment"
    );

    let all = GraphBatch {
        nodes: d.graph.nodes().map(|(id, _)| id).collect(),
        edges: d.graph.edges().map(|(id, _)| id).collect(),
    };
    let embedder = Word2Vec::train(
        &label_sentences(&d.graph, &all),
        &Word2VecConfig {
            window: 1,
            epochs: 25,
            learning_rate: 0.08,
            ..Word2VecConfig::default()
        },
    );
    let mut schema = r.schema;
    let alignments = align_node_types(
        &mut schema,
        &embedder,
        &AlignmentConfig {
            cosine_threshold: 0.35,
            jaccard_threshold: 0.5,
        },
    );
    assert_eq!(alignments.len(), 3, "{alignments:?}");
    assert_eq!(schema.node_types.len(), 3);
    // Instance totals preserved by alignment (it only merges).
    assert_eq!(schema.node_instances() as usize, d.graph.node_count());
}

#[test]
fn diff_detects_drift_between_dataset_versions() {
    // Same dataset family, one version with an extra noise axis: the diff
    // must flag constraint changes rather than pretend equality.
    let v1 = DatasetId::Pole.generate(0.05, 49);
    let mut v2 = DatasetId::Pole.generate(0.05, 49);
    inject_noise(&mut v2.graph, &NoiseSpec::grid(30, 100, 49));
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let s1 = d.discover(&v1.graph).schema;
    let s2 = d.discover(&v2.graph).schema;
    let diff = diff_schemas(&s1, &s2);
    assert!(
        !diff.is_empty(),
        "property removal must surface in the diff"
    );
}
