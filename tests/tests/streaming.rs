//! Tests of the true-streaming API: independent chunks with their own
//! interners, dropped after processing.

use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_datasets::DatasetId;
use pg_hive_graph::{GraphBuilder, PropertyGraph, Value, ValueKind};

fn person_chunk(offset: i64, with_email: bool) -> PropertyGraph {
    let mut b = GraphBuilder::new();
    let mut people = Vec::new();
    for i in 0..10 {
        let mut props = vec![("name", Value::from("p")), ("age", Value::Int(offset + i))];
        if with_email {
            props.push(("email", Value::from("e")));
        }
        people.push(b.add_node(&["Person"], &props));
    }
    let org = b.add_node(&["Org"], &[("url", Value::from("u"))]);
    for p in &people {
        b.add_edge(*p, org, &["WORKS_AT"], &[("from", Value::Int(2000))]);
    }
    b.finish()
}

#[test]
fn stream_merges_chunk_schemas() {
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let r = d.discover_stream([person_chunk(0, true), person_chunk(100, false)]);
    assert_eq!(r.chunk_times.len(), 2);
    assert_eq!(r.elements, 2 * (11 + 10));
    let person = r
        .schema
        .node_type_by_labels(&pg_hive_core::label_set(&["Person"]))
        .expect("Person type");
    let t = &r.schema.node_types[person];
    assert_eq!(t.instance_count, 20);
    // email appears only in chunk 1 → optional; name/age everywhere →
    // mandatory. Counts accumulated across chunks.
    assert!(t.props["name"].is_mandatory(t.instance_count));
    assert!(!t.props["email"].is_mandatory(t.instance_count));
    assert_eq!(t.props["email"].occurrences, 10);
    // Members are stripped (the chunks are gone).
    assert!(t.members.is_empty());
}

#[test]
fn stream_joins_datatypes_across_chunks() {
    // Chunk 1 has integer 'score', chunk 2 has float 'score' for the same
    // type: the merged kind must be the join (Float).
    let mut b = GraphBuilder::new();
    b.add_node(&["T"], &[("score", Value::Int(1))]);
    let c1 = b.finish();
    let mut b = GraphBuilder::new();
    b.add_node(&["T"], &[("score", Value::Float(1.5))]);
    let c2 = b.finish();
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let r = d.discover_stream([c1, c2]);
    let t = &r.schema.node_types[0];
    assert_eq!(t.props["score"].kind, Some(ValueKind::Float));
}

#[test]
fn stream_cardinality_takes_maxima() {
    // Chunk 1: one person per org (max_in 1); chunk 2: three per org.
    let mut b = GraphBuilder::new();
    let p = b.add_node(&["Person"], &[("name", Value::from("a"))]);
    let o = b.add_node(&["Org"], &[("url", Value::from("u"))]);
    b.add_edge(p, o, &["WORKS_AT"], &[]);
    let c1 = b.finish();
    let c2 = person_chunk(0, false); // 10 people → 1 org
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let r = d.discover_stream([c1, c2]);
    let works = r
        .schema
        .edge_type_by_labels(&pg_hive_core::label_set(&["WORKS_AT"]))
        .unwrap();
    let card = r.schema.edge_types[works].cardinality.unwrap();
    assert_eq!(card.max_in, 10, "maximum across chunks");
}

#[test]
fn stream_matches_resident_discovery_on_split_dataset() {
    // Split a generated dataset into two resident halves, re-build each as
    // an independent graph, and compare the streamed type inventory with
    // the single-graph run.
    let full = DatasetId::Pole.generate(0.05, 61);
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let resident = d.discover(&full.graph);

    // Rebuild two chunks through the text round trip (fresh interners).
    let text = pg_hive_graph::loader::save_text(&full.graph);
    let lines: Vec<&str> = text.lines().collect();
    let nodes: Vec<&str> = lines
        .iter()
        .filter(|l| l.starts_with('N'))
        .copied()
        .collect();
    let edges: Vec<&str> = lines
        .iter()
        .filter(|l| l.starts_with('E'))
        .copied()
        .collect();
    // All nodes in both chunks (edges need endpoints); split the edges.
    let half = edges.len() / 2;
    let chunk = |es: &[&str]| {
        let mut t = nodes.join("\n");
        t.push('\n');
        t.push_str(&es.join("\n"));
        pg_hive_graph::loader::load_text(&t).unwrap()
    };
    let c1 = chunk(&edges[..half]);
    let c2 = chunk(&edges[half..]);
    let streamed = d.discover_stream([c1, c2]);

    let mut a: Vec<_> = resident
        .schema
        .edge_types
        .iter()
        .map(|t| t.labels.clone())
        .collect();
    let mut b: Vec<_> = streamed
        .schema
        .edge_types
        .iter()
        .map(|t| t.labels.clone())
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "same edge-type inventory");
}

#[test]
fn empty_stream_gives_empty_schema() {
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let r = d.discover_stream(std::iter::empty::<PropertyGraph>());
    assert!(r.schema.node_types.is_empty());
    assert_eq!(r.elements, 0);
}
