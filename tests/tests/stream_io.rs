//! Integration tests for the streaming *ingestion* layer: the
//! `ChunkedTextReader` end-to-end into `discover_stream`, and a proptest
//! that pgt / CSV / JSONL round-trips through the exporters reproduce the
//! same discovered schema.

use pg_hive_core::schema::SchemaGraph;
use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_graph::loader::{load_text, save_text};
use pg_hive_graph::stream::csv::{save_edges_csv, save_nodes_csv, CsvSource};
use pg_hive_graph::stream::jsonl::{save_jsonl, JsonlSource};
use pg_hive_graph::stream::{pgt::PgtSource, read_all};
use pg_hive_graph::{ChunkedTextReader, GraphBuilder, PropertyGraph, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn node_inventory(s: &SchemaGraph) -> BTreeSet<Vec<String>> {
    s.node_types
        .iter()
        .map(|t| t.labels.iter().cloned().collect())
        .collect()
}

fn edge_inventory(s: &SchemaGraph) -> BTreeSet<Vec<String>> {
    s.edge_types
        .iter()
        .map(|t| t.labels.iter().cloned().collect())
        .collect()
}

#[test]
fn chunked_reader_matches_resident_inventory() {
    // 30 people, 10 orgs, 30 WORKS_AT edges: serialized nodes-first, so
    // every edge chunk must resolve its endpoints through the registry.
    let g = {
        let mut b = GraphBuilder::new();
        let mut people = Vec::new();
        for i in 0..30 {
            people.push(b.add_node(
                &["Person"],
                &[("name", Value::from(format!("p{i}").as_str()))],
            ));
        }
        let mut orgs = Vec::new();
        for i in 0..10 {
            orgs.push(b.add_node(
                &["Org"],
                &[("url", Value::from(format!("o{i}.com").as_str()))],
            ));
        }
        for (i, &p) in people.iter().enumerate() {
            b.add_edge(p, orgs[i % 10], &["WORKS_AT"], &[]);
        }
        b.finish()
    };
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let resident = d.discover(&g);

    let text = save_text(&g);
    let mut reader = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), 7);
    let streamed = d.discover_stream(std::iter::from_fn(|| reader.next_chunk().unwrap()));

    assert_eq!(reader.warnings().unresolved_edges, 0);
    assert!(reader.chunks_emitted() >= 8, "70 elements / chunk 7");
    assert!(
        reader.max_resident_elements() <= 14,
        "peak resident {} must stay <= 2x chunk size",
        reader.max_resident_elements()
    );
    assert_eq!(
        node_inventory(&streamed.schema),
        node_inventory(&resident.schema)
    );
    assert_eq!(
        edge_inventory(&streamed.schema),
        edge_inventory(&resident.schema)
    );
    // No edge was lost to chunking: WORKS_AT keeps its full count.
    let works = streamed
        .schema
        .edge_type_by_labels(&pg_hive_core::label_set(&["WORKS_AT"]))
        .unwrap();
    assert_eq!(streamed.schema.edge_types[works].instance_count, 30);
}

/// Random small graphs with value variety (commas, quotes, `=`, `%`,
/// dates, floats) to stress every escaper. With `all_labeled`, every node
/// carries its type label; otherwise nodes are randomly unlabeled.
fn arb_graph(all_labeled: bool) -> impl Strategy<Value = PropertyGraph> {
    let node = (
        0u8..5,
        any::<bool>(),
        proptest::collection::vec(any::<bool>(), 4),
    );
    (
        proptest::collection::vec(node, 1..40),
        proptest::collection::vec((0u8..40, 0u8..40, 0u8..3), 0..30),
    )
        .prop_map(move |(nodes, edges)| {
            let mut b = GraphBuilder::new();
            let mut ids = Vec::new();
            for (ty, labeled, key_mask) in &nodes {
                let label = format!("T{ty}");
                let labels: Vec<&str> = if all_labeled || *labeled {
                    vec![&label]
                } else {
                    vec![]
                };
                let keys = ["alpha", "beta", "gamma", "delta"];
                let values = [
                    Value::Int(7),
                    Value::from("x, \"quoted\"=tricky %"),
                    Value::from("1999-12-19"),
                    Value::Float(2.5),
                ];
                let props: Vec<(&str, Value)> = keys
                    .iter()
                    .zip(key_mask)
                    .enumerate()
                    .filter(|(_, (_, &m))| m)
                    .map(|(i, (k, _))| (*k, values[i].clone()))
                    .collect();
                ids.push(b.add_node(&labels, &props));
            }
            for (s, t, e) in &edges {
                let si = *s as usize % ids.len();
                let ti = *t as usize % ids.len();
                let label = format!("E{e}");
                b.add_edge(ids[si], ids[ti], &[&label], &[("w", Value::Int(*e as i64))]);
            }
            b.finish()
        })
}

/// The discovered schema reduced to a comparable form: sorted labeled
/// types with instance counts and property-key sets.
type Fingerprint = (
    Vec<(Vec<String>, u64, Vec<String>)>,
    Vec<(Vec<String>, u64)>,
);

fn schema_fingerprint(s: &SchemaGraph) -> Fingerprint {
    let mut nodes: Vec<(Vec<String>, u64, Vec<String>)> = s
        .node_types
        .iter()
        .map(|t| {
            (
                t.labels.iter().cloned().collect(),
                t.instance_count,
                t.props.keys().cloned().collect(),
            )
        })
        .collect();
    nodes.sort();
    let mut edges: Vec<(Vec<String>, u64)> = s
        .edge_types
        .iter()
        .map(|t| (t.labels.iter().cloned().collect(), t.instance_count))
        .collect();
    edges.sort();
    (nodes, edges)
}

/// Rebuild `g` with nodes and edges inserted in reverse order and each
/// element's properties reversed, so labels and property keys are interned
/// in a different order while the element *multiset* is unchanged.
fn shuffled_interning_rebuild(g: &PropertyGraph) -> PropertyGraph {
    let mut b = GraphBuilder::new();
    let mut new_ids = vec![None; g.node_count()];
    let nodes: Vec<_> = g.nodes().collect();
    for (id, node) in nodes.into_iter().rev() {
        let labels: Vec<&str> = node.labels.iter().map(|&l| g.label_str(l)).collect();
        let mut props: Vec<(&str, Value)> = node
            .props
            .iter()
            .map(|(k, v)| (g.key_str(*k), v.clone()))
            .collect();
        props.reverse();
        new_ids[id.index()] = Some(b.add_node(&labels, &props));
    }
    let edges: Vec<_> = g.edges().collect();
    for (_, e) in edges.into_iter().rev() {
        let labels: Vec<&str> = e.labels.iter().map(|&l| g.label_str(l)).collect();
        let mut props: Vec<(&str, Value)> = e
            .props
            .iter()
            .map(|(k, v)| (g.key_str(*k), v.clone()))
            .collect();
        props.reverse();
        let src = new_ids[e.src.index()].expect("endpoint rebuilt");
        let tgt = new_ids[e.tgt.index()].expect("endpoint rebuilt");
        b.add_edge(src, tgt, &labels, &props);
    }
    b.finish()
}

/// Canonical serialized form — byte equality here is the strongest
/// round-trip statement the CLI can make.
fn strict_text(d: &Discoverer, g: &PropertyGraph) -> String {
    pg_schema_strict(&d.discover(g).schema, "G")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On fully labeled graphs every round-trip must reproduce the exact
    /// discovered schema, down to the serialized text.
    #[test]
    fn labeled_round_trips_reproduce_the_exact_schema(g in arb_graph(true)) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let want = schema_fingerprint(&d.discover(&g).schema);
        let want_text = strict_text(&d, &g);

        let text = save_text(&g);
        let via_loader = load_text(&text).unwrap();
        prop_assert_eq!(&schema_fingerprint(&d.discover(&via_loader).schema), &want);
        prop_assert_eq!(&strict_text(&d, &via_loader), &want_text);

        let (via_pgt, w) = read_all(PgtSource::new(text.as_bytes())).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&strict_text(&d, &via_pgt), &want_text);

        let nodes_csv = save_nodes_csv(&g);
        let edges_csv = save_edges_csv(&g);
        let (via_csv, w) =
            read_all(CsvSource::new(nodes_csv.as_bytes(), Some(edges_csv.as_bytes()))).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&strict_text(&d, &via_csv), &want_text);

        let jsonl = save_jsonl(&g);
        let (via_jsonl, w) = read_all(JsonlSource::new(jsonl.as_bytes())).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&strict_text(&d, &via_jsonl), &want_text);
    }

    /// With unlabeled nodes the representation vectors and the abstract
    /// cluster resolution used to depend on property-key interning order,
    /// so only the order-preserving pgt path round-tripped exactly. The
    /// canonical-id view plus `SchemaState` closed that gap: CSV and JSONL
    /// round-trips now reproduce the **exact serialized schema** too.
    #[test]
    fn mixed_round_trips_reproduce_the_exact_schema(g in arb_graph(false)) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let want_text = strict_text(&d, &g);
        let want_stats = pg_hive_graph::GraphStats::compute(&g);

        let text = save_text(&g);
        let via_loader = load_text(&text).unwrap();
        prop_assert_eq!(&strict_text(&d, &via_loader), &want_text);

        let (via_pgt, w) = read_all(PgtSource::new(text.as_bytes())).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&strict_text(&d, &via_pgt), &want_text);

        let nodes_csv = save_nodes_csv(&g);
        let edges_csv = save_edges_csv(&g);
        let (via_csv, w) =
            read_all(CsvSource::new(nodes_csv.as_bytes(), Some(edges_csv.as_bytes()))).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&pg_hive_graph::GraphStats::compute(&via_csv), &want_stats);
        prop_assert_eq!(&strict_text(&d, &via_csv), &want_text);

        let jsonl = save_jsonl(&g);
        let (via_jsonl, w) = read_all(JsonlSource::new(jsonl.as_bytes())).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&pg_hive_graph::GraphStats::compute(&via_jsonl), &want_stats);
        prop_assert_eq!(&strict_text(&d, &via_jsonl), &want_text);
    }

    /// The same element multiset under a shuffled interning order (elements
    /// and their properties inserted in reverse) must discover an
    /// *identical* serialized schema: vectors key their binary coordinates
    /// on the canonical-id view and `SchemaState::finalize` resolves types
    /// canonically, so neither clustering nor type resolution can see the
    /// interning order.
    #[test]
    fn shuffled_interning_order_discovers_identical_schema(g in arb_graph(false)) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let shuffled = shuffled_interning_rebuild(&g);
        prop_assert_eq!(strict_text(&d, &shuffled), strict_text(&d, &g));
    }

    #[test]
    fn chunking_never_loses_declared_edges(g in arb_graph(false), chunk_size in 1usize..20) {
        let text = save_text(&g);
        let mut reader = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), chunk_size);
        let mut nodes = 0usize;
        let mut edges = 0usize;
        let mut peak = 0usize;
        while let Some(c) = reader.next_chunk().unwrap() {
            nodes += c.node_count();
            edges += c.edge_count();
            peak = peak.max(c.node_count() + c.edge_count());
        }
        prop_assert_eq!(edges, g.edge_count());
        prop_assert!(nodes >= g.node_count(), "stubs only ever add nodes");
        prop_assert_eq!(reader.warnings().unresolved_edges, 0);
        // Budget precheck: a chunk may overshoot by at most one edge plus
        // its two stubs.
        prop_assert!(peak <= chunk_size + 2, "peak {} chunk {}", peak, chunk_size);
    }
}
