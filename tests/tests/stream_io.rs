//! Integration tests for the streaming *ingestion* layer: the
//! `ChunkedTextReader` end-to-end into `discover_stream`, and a proptest
//! that pgt / CSV / JSONL round-trips through the exporters reproduce the
//! same discovered schema.

use pg_hive_core::schema::SchemaGraph;
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_graph::loader::{load_text, save_text};
use pg_hive_graph::stream::csv::{save_edges_csv, save_nodes_csv, CsvSource};
use pg_hive_graph::stream::jsonl::{save_jsonl, JsonlSource};
use pg_hive_graph::stream::{pgt::PgtSource, read_all};
use pg_hive_graph::{ChunkedTextReader, GraphBuilder, PropertyGraph, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn node_inventory(s: &SchemaGraph) -> BTreeSet<Vec<String>> {
    s.node_types
        .iter()
        .map(|t| t.labels.iter().cloned().collect())
        .collect()
}

fn edge_inventory(s: &SchemaGraph) -> BTreeSet<Vec<String>> {
    s.edge_types
        .iter()
        .map(|t| t.labels.iter().cloned().collect())
        .collect()
}

#[test]
fn chunked_reader_matches_resident_inventory() {
    // 30 people, 10 orgs, 30 WORKS_AT edges: serialized nodes-first, so
    // every edge chunk must resolve its endpoints through the registry.
    let g = {
        let mut b = GraphBuilder::new();
        let mut people = Vec::new();
        for i in 0..30 {
            people.push(b.add_node(
                &["Person"],
                &[("name", Value::from(format!("p{i}").as_str()))],
            ));
        }
        let mut orgs = Vec::new();
        for i in 0..10 {
            orgs.push(b.add_node(
                &["Org"],
                &[("url", Value::from(format!("o{i}.com").as_str()))],
            ));
        }
        for (i, &p) in people.iter().enumerate() {
            b.add_edge(p, orgs[i % 10], &["WORKS_AT"], &[]);
        }
        b.finish()
    };
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let resident = d.discover(&g);

    let text = save_text(&g);
    let mut reader = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), 7);
    let streamed = d.discover_stream(std::iter::from_fn(|| reader.next_chunk().unwrap()));

    assert_eq!(reader.warnings().unresolved_edges, 0);
    assert!(reader.chunks_emitted() >= 8, "70 elements / chunk 7");
    assert!(
        reader.max_resident_elements() <= 14,
        "peak resident {} must stay <= 2x chunk size",
        reader.max_resident_elements()
    );
    assert_eq!(
        node_inventory(&streamed.schema),
        node_inventory(&resident.schema)
    );
    assert_eq!(
        edge_inventory(&streamed.schema),
        edge_inventory(&resident.schema)
    );
    // No edge was lost to chunking: WORKS_AT keeps its full count.
    let works = streamed
        .schema
        .edge_type_by_labels(&pg_hive_core::label_set(&["WORKS_AT"]))
        .unwrap();
    assert_eq!(streamed.schema.edge_types[works].instance_count, 30);
}

/// Random small graphs with value variety (commas, quotes, `=`, `%`,
/// dates, floats) to stress every escaper. With `all_labeled`, every node
/// carries its type label; otherwise nodes are randomly unlabeled.
fn arb_graph(all_labeled: bool) -> impl Strategy<Value = PropertyGraph> {
    let node = (
        0u8..5,
        any::<bool>(),
        proptest::collection::vec(any::<bool>(), 4),
    );
    (
        proptest::collection::vec(node, 1..40),
        proptest::collection::vec((0u8..40, 0u8..40, 0u8..3), 0..30),
    )
        .prop_map(move |(nodes, edges)| {
            let mut b = GraphBuilder::new();
            let mut ids = Vec::new();
            for (ty, labeled, key_mask) in &nodes {
                let label = format!("T{ty}");
                let labels: Vec<&str> = if all_labeled || *labeled {
                    vec![&label]
                } else {
                    vec![]
                };
                let keys = ["alpha", "beta", "gamma", "delta"];
                let values = [
                    Value::Int(7),
                    Value::from("x, \"quoted\"=tricky %"),
                    Value::from("1999-12-19"),
                    Value::Float(2.5),
                ];
                let props: Vec<(&str, Value)> = keys
                    .iter()
                    .zip(key_mask)
                    .enumerate()
                    .filter(|(_, (_, &m))| m)
                    .map(|(i, (k, _))| (*k, values[i].clone()))
                    .collect();
                ids.push(b.add_node(&labels, &props));
            }
            for (s, t, e) in &edges {
                let si = *s as usize % ids.len();
                let ti = *t as usize % ids.len();
                let label = format!("E{e}");
                b.add_edge(ids[si], ids[ti], &[&label], &[("w", Value::Int(*e as i64))]);
            }
            b.finish()
        })
}

/// The discovered schema reduced to a comparable form: sorted labeled
/// types with instance counts and property-key sets.
type Fingerprint = (
    Vec<(Vec<String>, u64, Vec<String>)>,
    Vec<(Vec<String>, u64)>,
);

fn schema_fingerprint(s: &SchemaGraph) -> Fingerprint {
    let mut nodes: Vec<(Vec<String>, u64, Vec<String>)> = s
        .node_types
        .iter()
        .map(|t| {
            (
                t.labels.iter().cloned().collect(),
                t.instance_count,
                t.props.keys().cloned().collect(),
            )
        })
        .collect();
    nodes.sort();
    let mut edges: Vec<(Vec<String>, u64)> = s
        .edge_types
        .iter()
        .map(|t| (t.labels.iter().cloned().collect(), t.instance_count))
        .collect();
    edges.sort();
    (nodes, edges)
}

/// The parts of a discovered schema that must survive *any* faithful
/// round-trip of a graph with unlabeled nodes: the labeled node-type
/// inventory, the exact edge types (edge merging is label-only, hence
/// order-invariant), and the instance totals. Per-type node counts and key
/// unions are excluded: they depend on which labeled type absorbs a
/// borderline unlabeled cluster, which can shift when a format re-orders
/// key interning.
#[allow(clippy::type_complexity)]
fn labeled_fingerprint(
    s: &SchemaGraph,
) -> (BTreeSet<Vec<String>>, Vec<(Vec<String>, u64)>, u64, u64) {
    let (_, edges) = schema_fingerprint(s);
    let labeled: BTreeSet<Vec<String>> = node_inventory(s)
        .into_iter()
        .filter(|l| !l.is_empty())
        .collect();
    (labeled, edges, s.node_instances(), s.edge_instances())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On fully labeled graphs discovery is invariant to the property-key
    /// interning order a format imposes, so every round-trip must
    /// reproduce the exact discovered schema.
    #[test]
    fn labeled_round_trips_reproduce_the_exact_schema(g in arb_graph(true)) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let want = schema_fingerprint(&d.discover(&g).schema);

        let text = save_text(&g);
        let via_loader = load_text(&text).unwrap();
        prop_assert_eq!(&schema_fingerprint(&d.discover(&via_loader).schema), &want);

        let (via_pgt, w) = read_all(PgtSource::new(text.as_bytes())).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&schema_fingerprint(&d.discover(&via_pgt).schema), &want);

        let nodes_csv = save_nodes_csv(&g);
        let edges_csv = save_edges_csv(&g);
        let (via_csv, w) =
            read_all(CsvSource::new(nodes_csv.as_bytes(), Some(edges_csv.as_bytes()))).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&schema_fingerprint(&d.discover(&via_csv).schema), &want);

        let jsonl = save_jsonl(&g);
        let (via_jsonl, w) = read_all(JsonlSource::new(jsonl.as_bytes())).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&schema_fingerprint(&d.discover(&via_jsonl).schema), &want);
    }

    /// With unlabeled nodes, borderline abstract clusters may merge
    /// differently when a format re-orders key interning (floating-point
    /// summation order in the embedder); the structure, the labeled
    /// inventory, and all totals must still round-trip bit-exactly. The
    /// order-preserving pgt path keeps exact equality even here.
    #[test]
    fn mixed_round_trips_preserve_structure_and_labeled_inventory(g in arb_graph(false)) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let want_exact = schema_fingerprint(&d.discover(&g).schema);
        let want = labeled_fingerprint(&d.discover(&g).schema);
        let want_stats = pg_hive_graph::GraphStats::compute(&g);

        let text = save_text(&g);
        let via_loader = load_text(&text).unwrap();
        prop_assert_eq!(&schema_fingerprint(&d.discover(&via_loader).schema), &want_exact);

        let (via_pgt, w) = read_all(PgtSource::new(text.as_bytes())).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&schema_fingerprint(&d.discover(&via_pgt).schema), &want_exact);

        let nodes_csv = save_nodes_csv(&g);
        let edges_csv = save_edges_csv(&g);
        let (via_csv, w) =
            read_all(CsvSource::new(nodes_csv.as_bytes(), Some(edges_csv.as_bytes()))).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&pg_hive_graph::GraphStats::compute(&via_csv), &want_stats);
        prop_assert_eq!(&labeled_fingerprint(&d.discover(&via_csv).schema), &want);

        let jsonl = save_jsonl(&g);
        let (via_jsonl, w) = read_all(JsonlSource::new(jsonl.as_bytes())).unwrap();
        prop_assert!(w.is_empty());
        prop_assert_eq!(&pg_hive_graph::GraphStats::compute(&via_jsonl), &want_stats);
        prop_assert_eq!(&labeled_fingerprint(&d.discover(&via_jsonl).schema), &want);
    }

    #[test]
    fn chunking_never_loses_declared_edges(g in arb_graph(false), chunk_size in 1usize..20) {
        let text = save_text(&g);
        let mut reader = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), chunk_size);
        let mut nodes = 0usize;
        let mut edges = 0usize;
        let mut peak = 0usize;
        while let Some(c) = reader.next_chunk().unwrap() {
            nodes += c.node_count();
            edges += c.edge_count();
            peak = peak.max(c.node_count() + c.edge_count());
        }
        prop_assert_eq!(edges, g.edge_count());
        prop_assert!(nodes >= g.node_count(), "stubs only ever add nodes");
        prop_assert_eq!(reader.warnings().unresolved_edges, 0);
        // Budget precheck: a chunk may overshoot by at most one edge plus
        // its two stubs.
        prop_assert!(peak <= chunk_size + 2, "peak {} chunk {}", peak, chunk_size);
    }
}
