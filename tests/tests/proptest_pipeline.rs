//! Property-based tests over the *whole pipeline* on randomized small
//! graphs: whatever the input looks like, discovery must terminate with a
//! schema that is complete, consistent, and stable.

use pg_hive_core::{ClusterMethod, Discoverer, PipelineConfig};
use pg_hive_graph::{GraphBuilder, PropertyGraph, Value};
use proptest::prelude::*;

/// A randomized property graph: up to 5 "types" (label/keyset templates),
/// up to 40 nodes and 40 edges, with optional unlabeled nodes and missing
/// properties.
fn arb_graph() -> impl Strategy<Value = PropertyGraph> {
    let node = (
        0u8..5,
        any::<bool>(),
        proptest::collection::vec(any::<bool>(), 3),
    );
    (
        proptest::collection::vec(node, 1..40),
        proptest::collection::vec((0u8..40, 0u8..40, 0u8..3), 0..40),
    )
        .prop_map(|(nodes, edges)| {
            let mut b = GraphBuilder::new();
            let mut ids = Vec::new();
            for (ty, labeled, key_mask) in &nodes {
                let label = format!("T{ty}");
                let labels: Vec<&str> = if *labeled { vec![&label] } else { vec![] };
                let keys = ["alpha", "beta", "gamma"];
                let props: Vec<(&str, Value)> = keys
                    .iter()
                    .zip(key_mask)
                    .filter(|(_, &m)| m)
                    .map(|(k, _)| (*k, Value::Int(*ty as i64)))
                    .collect();
                ids.push(b.add_node(&labels, &props));
            }
            for (s, t, e) in &edges {
                let si = *s as usize % ids.len();
                let ti = *t as usize % ids.len();
                let label = format!("E{e}");
                b.add_edge(ids[si], ids[ti], &[&label], &[]);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn discovery_types_every_element(g in arb_graph()) {
        for method in [ClusterMethod::Elsh, ClusterMethod::MinHash] {
            let cfg = PipelineConfig { method, ..PipelineConfig::default() };
            let r = Discoverer::new(cfg).discover(&g);
            // Assignments are total and in range.
            prop_assert_eq!(r.node_assignment.len(), g.node_count());
            for &a in &r.node_assignment {
                prop_assert!((a as usize) < r.schema.node_types.len());
            }
            for &a in &r.edge_assignment {
                prop_assert!((a as usize) < r.schema.edge_types.len());
            }
            // Member lists partition the graph.
            let total: usize = r.schema.node_types.iter().map(|t| t.members.len()).sum();
            prop_assert_eq!(total, g.node_count());
            // Instance counts agree with member lists.
            for t in &r.schema.node_types {
                prop_assert_eq!(t.instance_count as usize, t.members.len());
            }
        }
    }

    #[test]
    fn discovery_preserves_every_label_and_key(g in arb_graph()) {
        let r = Discoverer::new(PipelineConfig::default()).discover(&g);
        let labels = r.schema.node_label_universe();
        let keys = r.schema.node_key_universe();
        for (_, n) in g.nodes() {
            for &l in &n.labels {
                prop_assert!(labels.contains(g.label_str(l)));
            }
            for k in n.keys() {
                prop_assert!(keys.contains(g.key_str(k)));
            }
        }
    }

    #[test]
    fn mandatory_constraints_are_sound_on_random_graphs(g in arb_graph()) {
        let r = Discoverer::new(PipelineConfig::default()).discover(&g);
        for t in &r.schema.node_types {
            for (key, spec) in &t.props {
                if spec.is_mandatory(t.instance_count) {
                    let sym = g.keys().get(key).unwrap();
                    for &m in &t.members {
                        prop_assert!(
                            g.node(pg_hive_graph::NodeId(m)).get(sym).is_some(),
                            "mandatory {} missing", key
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn discovery_is_deterministic(g in arb_graph()) {
        let d = Discoverer::new(PipelineConfig::default());
        let a = d.discover(&g);
        let b = d.discover(&g);
        prop_assert_eq!(a.node_assignment, b.node_assignment);
        prop_assert_eq!(a.schema, b.schema);
    }

    #[test]
    fn incremental_generalizes_every_prefix(g in arb_graph()) {
        let d = Discoverer::new(PipelineConfig::default());
        let batches = pg_hive_graph::split_batches(&g, 3, 5);
        let mut prev: Option<pg_hive_core::SchemaGraph> = None;
        for upto in 1..=3 {
            let r = d.discover_batches(&g, &batches[..upto]);
            if let Some(p) = &prev {
                prop_assert!(pg_hive_core::merge::is_generalization_of(&r.schema, p));
            }
            prev = Some(r.schema);
        }
    }

    #[test]
    fn strict_serialization_parses_back(g in arb_graph()) {
        let r = Discoverer::new(PipelineConfig::default()).discover(&g);
        let text = pg_hive_core::serialize::pg_schema_strict(&r.schema, "P");
        let (parsed, _) = pg_hive_core::parse_pg_schema(&text).expect("round trip");
        prop_assert_eq!(parsed.node_types.len(), r.schema.node_types.len());
        prop_assert_eq!(parsed.edge_types.len(), r.schema.edge_types.len());
    }

    #[test]
    fn retracting_everything_always_empties(g in arb_graph()) {
        let mut r = Discoverer::new(PipelineConfig::default()).discover(&g);
        let all = pg_hive_graph::GraphBatch {
            nodes: g.nodes().map(|(id, _)| id).collect(),
            edges: g.edges().map(|(id, _)| id).collect(),
        };
        pg_hive_core::retract_batch(&mut r.schema, &g, &all);
        prop_assert!(r.schema.node_types.is_empty());
        prop_assert!(r.schema.edge_types.is_empty());
    }
}
