//! Proptests for the incremental steady-state engine: every shortcut the
//! hot path takes must be **byte-identical** in strict schema text to the
//! uncached engine it replaces.
//!
//! Three oracles, each the retained slow path of one optimization:
//!
//! 1. **Dirty-pool finalize** — `SchemaState::finalize_cached` against the
//!    full `finalize`, under random interleavings of absorbs, watch-style
//!    partition rolls (window expiry), and snapshot save/load mid-sequence.
//!    The interleaving also replays `watch`'s incremental `combined =
//!    resident ⊕ retained` maintenance (per-pass delta merges, rebuild only
//!    on expiry) against a from-scratch rebuild every pass.
//! 2. **Signature cache** — `absorb_stream_cached` (cold, warm, and
//!    resumed from serialized cache lines) against `absorb_stream`, across
//!    wire formats × chunk sizes × thread counts, asserting the warm pass
//!    actually hits.
//! 3. **Batched pending resolution** — `resolve_pending` (one mini-graph
//!    per endpoint-signature group) against `resolve_pending_reference`
//!    (one mini-graph per carried edge): same resolved count, same
//!    leftovers, same schema.
//!
//! Shard partitions and random merge-tree fold orders are certified
//! separately in `proptest_shard_merge.rs`.

use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::snapshot::{ResumeContext, SnapshotConfig};
use pg_hive_core::{Discoverer, PipelineConfig, SchemaState, SignatureCache};
use pg_hive_graph::loader::save_text;
use pg_hive_graph::stream::csv::{save_edges_csv, save_nodes_csv, CsvSource};
use pg_hive_graph::stream::jsonl::{save_jsonl, JsonlSource};
use pg_hive_graph::stream::pgt::PgtSource;
use pg_hive_graph::{
    ChunkedTextReader, GraphBuilder, LabelSetRegistry, PropertyGraph, RawGraphSource, Value,
};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A factory producing fresh readers over one serialized wire-format text,
/// so cold/warm/reloaded runs each consume an independent source.
type SourceFactory = Box<dyn Fn() -> Box<dyn RawGraphSource>>;

/// Random small graphs: labeled/unlabeled nodes over a few types, edges
/// free to reference any node, values the wire formats must escape.
fn arb_graph() -> impl Strategy<Value = PropertyGraph> {
    let node = (
        0u8..4,
        any::<bool>(),
        proptest::collection::vec(any::<bool>(), 3),
    );
    (
        proptest::collection::vec(node, 1..20),
        proptest::collection::vec((0u8..25, 0u8..25, 0u8..3), 0..16),
    )
        .prop_map(|(nodes, edges)| {
            let mut b = GraphBuilder::new();
            let mut ids = Vec::new();
            for (ty, labeled, key_mask) in &nodes {
                let label = format!("T{ty}");
                let labels: Vec<&str> = if *labeled { vec![&label] } else { vec![] };
                let keys = ["alpha", "beta", "gamma"];
                let values = [
                    Value::Int(7),
                    Value::from("x, \"quoted\"=tricky %"),
                    Value::from("1999-12-19"),
                ];
                let props: Vec<(&str, Value)> = keys
                    .iter()
                    .zip(key_mask)
                    .enumerate()
                    .filter(|(_, (_, &m))| m)
                    .map(|(i, (k, _))| (*k, values[i].clone()))
                    .collect();
                ids.push(b.add_node(&labels, &props));
            }
            for (s, t, e) in &edges {
                let si = *s as usize % ids.len();
                let ti = *t as usize % ids.len();
                let label = format!("E{e}");
                b.add_edge(ids[si], ids[ti], &[&label], &[("w", Value::Int(*e as i64))]);
            }
            b.finish()
        })
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pg-hive-incr-prop-{}-{}-{tag}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

/// One step of the watch-style interleaving.
#[derive(Clone, Debug)]
enum Op {
    /// Absorb a chunked pass of graph `idx` into the resident state.
    Absorb(usize),
    /// Roll the partition window: retain the resident state, start fresh.
    Roll,
    /// Checkpoint the resident state to disk and resume from the file.
    SaveLoad,
}

/// Integer-coded op mix (the vendored proptest has no `prop_oneof`):
/// weights 4 absorb : 2 roll : 1 save-load.
fn arb_ops(graphs: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..7, 0..graphs), 1..len).prop_map(|codes| {
        codes
            .into_iter()
            .map(|(code, idx)| match code {
                0..=3 => Op::Absorb(idx),
                4..=5 => Op::Roll,
                _ => Op::SaveLoad,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Oracle 1: under random absorb / roll / save-load interleavings, the
    /// incrementally-maintained merged view finalized with
    /// `finalize_cached` equals a from-scratch rebuild finalized with the
    /// full `finalize` — after **every** step, not just at the end.
    #[test]
    fn interleaved_cached_finalize_matches_full_rebuild(
        graphs in proptest::collection::vec(arb_graph(), 2..4),
        ops in arb_ops(2, 12),
        keep in 1usize..3,
        threads in 1usize..=3,
    ) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let mut state = d.new_state();
        let mut retained: VecDeque<SchemaState> = VecDeque::new();
        // Watch's steady-state invariant: `combined` = state ⊕ retained,
        // maintained by per-pass delta merges and rebuilt only on window
        // expiry — never recomputed on the healthy path.
        let mut combined = d.new_state();
        for op in &ops {
            match op {
                Op::Absorb(i) => {
                    let g = graphs[*i % graphs.len()].clone();
                    let mut delta = d.new_state();
                    d.absorb_stream(std::iter::once(g), &mut delta, threads);
                    combined.merge(delta.clone());
                    state.merge(delta);
                }
                Op::Roll => {
                    retained.push_front(std::mem::replace(&mut state, d.new_state()));
                    if retained.len() > keep {
                        retained.truncate(keep);
                        // Expiry is subtractive; merge cannot subtract, so
                        // this is the one case that must rebuild.
                        combined = state.clone();
                        for r in &retained {
                            combined.merge(r.clone());
                        }
                    }
                }
                Op::SaveLoad => {
                    let path = temp_path("ckpt");
                    state.save(&path).expect("state saved");
                    state = SchemaState::load(&path).expect("state loads");
                    let _ = std::fs::remove_file(&path);
                }
            }
            // Oracle: rebuild the merged view from scratch, full finalize.
            let mut oracle = state.clone();
            for r in &retained {
                oracle.merge(r.clone());
            }
            prop_assert_eq!(
                pg_schema_strict(&combined.finalize_cached(), "G"),
                pg_schema_strict(&oracle.finalize(), "G"),
                "diverged after {:?} (keep {}, threads {})", op, keep, threads
            );
            // The resident state's own cached finalize agrees too.
            prop_assert_eq!(
                pg_schema_strict(&state.finalize_cached(), "G"),
                pg_schema_strict(&state.clone().finalize(), "G")
            );
        }
    }

    /// Oracle 2: the signature-cache stream — cold, warm, and resumed from
    /// serialized cache lines — is byte-identical to the uncached engine
    /// for every wire format, chunk size, and thread count, and the warm
    /// pass actually re-uses memoized clusterings.
    #[test]
    fn signature_cached_stream_matches_uncached_across_formats(
        g in arb_graph(),
        chunk in 1usize..8,
        threads in 1usize..=4,
    ) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let texts: [(&str, SourceFactory); 3] = [
            ("pgt", {
                let t = save_text(&g);
                Box::new(move || Box::new(PgtSource::new(Cursor::new(t.clone().into_bytes()))))
            }),
            ("jsonl", {
                let t = save_jsonl(&g);
                Box::new(move || Box::new(JsonlSource::new(Cursor::new(t.clone().into_bytes()))))
            }),
            ("csv", {
                let (n, e) = (save_nodes_csv(&g), save_edges_csv(&g));
                Box::new(move || {
                    Box::new(CsvSource::new(
                        Cursor::new(n.clone().into_bytes()),
                        Some(Cursor::new(e.clone().into_bytes())),
                    ))
                })
            }),
        ];
        for (fmt, mk_source) in &texts {
            let run = |cache: Option<&SignatureCache>| {
                let mut state = d.new_state();
                let mut reader = ChunkedTextReader::with_registry(
                    mk_source(),
                    chunk,
                    LabelSetRegistry::default(),
                );
                let chunks = std::iter::from_fn(|| reader.next_chunk().expect("valid input"));
                match cache {
                    Some(c) => d.absorb_stream_cached(chunks, &mut state, threads, c),
                    None => d.absorb_stream(chunks, &mut state, threads),
                };
                pg_schema_strict(&state.finalize(), "G")
            };
            let uncached = run(None);
            let cache = SignatureCache::default();
            prop_assert_eq!(&run(Some(&cache)), &uncached, "cold {} run diverged", fmt);
            // A cold pass may already hit when the stream repeats a chunk
            // shape — that is the cross-chunk memoization working. The
            // warm pass over the same stream must hit on *every* chunk.
            let cold = cache.stats();
            prop_assert_eq!(&run(Some(&cache)), &uncached, "warm {} run diverged", fmt);
            let warm = cache.stats();
            let chunks = cold.hits + cold.misses;
            prop_assert!(
                chunks > 0 && warm.hits - cold.hits == chunks,
                "warm {} pass should hit every chunk: {:?} -> {:?}", fmt, cold, warm
            );
            // Persisted cache (snapshot lines) resumes to the same bytes.
            let reloaded =
                SignatureCache::from_snapshot_lines(&cache.snapshot_lines(), 4096)
                    .expect("cache lines parse");
            prop_assert_eq!(&run(Some(&reloaded)), &uncached, "resumed {} run diverged", fmt);
            prop_assert!(reloaded.stats().hits > 0);
        }
    }

    /// Oracle 3: batched pending-edge resolution (one mini-graph per
    /// endpoint-signature group) returns exactly what the per-edge
    /// reference does — same resolved count, same leftover records, same
    /// finalized schema.
    #[test]
    fn batched_pending_resolution_matches_per_edge_reference(
        g in arb_graph(),
        fraction in 1u8..100,
        chunk in 1usize..8,
    ) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let config = SnapshotConfig::new(d.config(), chunk);
        let text = save_text(&g);
        let lines: Vec<&str> = text.lines().collect();
        let k = lines.len() * usize::from(fraction) / 100;
        let mut contexts = Vec::new();
        for part_lines in [&lines[..k], &lines[k..]] {
            let mut part = part_lines.join("\n");
            if !part.is_empty() {
                part.push('\n');
            }
            let mut state = d.new_state();
            let mut reader = ChunkedTextReader::with_registry(
                PgtSource::new(Cursor::new(part.into_bytes())),
                chunk,
                LabelSetRegistry::default(),
            );
            reader.set_carry_unresolved(true);
            d.absorb_stream(
                std::iter::from_fn(|| reader.next_chunk().expect("valid input")),
                &mut state,
                1,
            );
            let pending = reader.take_pending();
            contexts.push(ResumeContext {
                config: config.clone(),
                state,
                registry: reader.into_registry(),
                watch: None,
                pending,
            });
        }
        let mut merged = contexts.remove(0);
        merged.merge(contexts.remove(0)).expect("configs match");

        let (mut batched_state, mut reference_state) = (merged.state.clone(), merged.state);
        let (batched_left, batched_n) =
            d.resolve_pending(&mut batched_state, &merged.registry, merged.pending.clone());
        let (reference_left, reference_n) =
            d.resolve_pending_reference(&mut reference_state, &merged.registry, merged.pending);
        prop_assert_eq!(batched_n, reference_n);
        prop_assert_eq!(&batched_left, &reference_left);
        prop_assert_eq!(
            pg_schema_strict(&batched_state.finalize(), "G"),
            pg_schema_strict(&reference_state.finalize(), "G")
        );
    }
}
