//! Violation-injection (mutation) harness for the streaming validator.
//!
//! A validator is only as trustworthy as its test oracle: a checker that
//! flags *something* on broken input proves little — it must flag
//! **exactly** the defects that exist. This harness generates a random
//! conforming dataset, discovers its schema, and first proves the
//! negative space: the schema validates **clean** against its own source
//! in all three wire formats (pgt / CSV / JSONL), resident-sized chunks
//! and chunk size 1 alike. It then plants k typed mutations — drop a
//! mandatory key, retype a value, relabel a node, point an edge at a
//! ghost id — and asserts the validator reports **exactly** the injected
//! violation set (category, element id, and count; nothing else) under
//! chunked (sizes 1–8), streamed, and sharded (1–3 shards) ingestion.

use pg_hive_core::{CompiledSchema, Discoverer, PipelineConfig, ViolationKind};
use pg_hive_graph::stream::csv::CsvSource;
use pg_hive_graph::stream::jsonl::JsonlSource;
use pg_hive_graph::stream::pgt::PgtSource;
use pg_hive_graph::stream::read_all;
use pg_hive_graph::RawGraphSource;
use proptest::prelude::*;
use std::io::Cursor;

// ---------------------------------------------------------------------
// Dataset model: a conforming graph under a fixed three-type template.
// ---------------------------------------------------------------------

/// A property value the generators emit: alphanumeric-only payloads so
/// every wire format round-trips them without escaping.
#[derive(Clone, Debug)]
enum V {
    Int(i64),
    Str(String),
}

impl V {
    fn wire(&self) -> String {
        match self {
            V::Int(i) => i.to_string(),
            V::Str(s) => s.clone(),
        }
    }
    fn json(&self) -> String {
        match self {
            V::Int(i) => i.to_string(),
            V::Str(s) => format!("\"{s}\""),
        }
    }
}

#[derive(Clone, Debug)]
struct NodeSpec {
    id: String,
    label: String,
    props: Vec<(&'static str, V)>,
}

#[derive(Clone, Debug)]
struct EdgeSpec {
    src: String,
    tgt: String,
    label: String,
    props: Vec<(&'static str, V)>,
}

#[derive(Clone, Debug)]
struct Dataset {
    nodes: Vec<NodeSpec>,
    edges: Vec<EdgeSpec>,
}

/// Conforming datasets under the template:
/// - `Person {name: STRING!, age: INT!, nick: STRING?}` (≥ 2 instances)
/// - `Org {url: STRING!}` (≥ 1)
/// - `Place {name: STRING!}` (≥ 1, never an edge endpoint — the
///   guaranteed-isolated relabel pool)
/// - `KNOWS  Person -> Person {since: INT!}`
/// - `WORKS_AT Person -> Org {from: INT!}`
///
/// Every mandatory key is present on every instance by construction, so
/// discovery derives exactly the template's MANDATORY set and the
/// injected mutations have fully predictable consequences.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        proptest::collection::vec(any::<bool>(), 2..6), // persons (nick?)
        1usize..3,                                      // orgs
        1usize..3,                                      // places
        proptest::collection::vec((0u8..8, 0u8..8), 0..5), // knows pairs
        proptest::collection::vec((0u8..8, 0u8..8), 0..5), // works pairs
    )
        .prop_map(|(persons, orgs, places, knows, works)| {
            let mut nodes = Vec::new();
            for (i, nick) in persons.iter().enumerate() {
                let mut props = vec![
                    ("name", V::Str(format!("n{i}"))),
                    ("age", V::Int(20 + i as i64)),
                ];
                if *nick {
                    props.push(("nick", V::Str(format!("nk{i}"))));
                }
                nodes.push(NodeSpec {
                    id: format!("p{i}"),
                    label: "Person".into(),
                    props,
                });
            }
            for i in 0..orgs {
                nodes.push(NodeSpec {
                    id: format!("o{i}"),
                    label: "Org".into(),
                    props: vec![("url", V::Str(format!("u{i}")))],
                });
            }
            for i in 0..places {
                nodes.push(NodeSpec {
                    id: format!("q{i}"),
                    label: "Place".into(),
                    props: vec![("name", V::Str(format!("q{i}")))],
                });
            }
            let np = persons.len();
            let mut edges = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (a, b) in knows {
                let (s, t) = (a as usize % np, b as usize % np);
                // Distinct endpoints and no parallel edges: `src->tgt`
                // element ids stay unique, so exactness is well-defined.
                if s != t && seen.insert((format!("p{s}"), format!("p{t}"))) {
                    edges.push(EdgeSpec {
                        src: format!("p{s}"),
                        tgt: format!("p{t}"),
                        label: "KNOWS".into(),
                        props: vec![("since", V::Int(2000 + t as i64))],
                    });
                }
            }
            for (a, b) in works {
                let (s, t) = (a as usize % np, b as usize % orgs);
                if seen.insert((format!("p{s}"), format!("o{t}"))) {
                    edges.push(EdgeSpec {
                        src: format!("p{s}"),
                        tgt: format!("o{t}"),
                        label: "WORKS_AT".into(),
                        props: vec![("from", V::Int(1990 + s as i64))],
                    });
                }
            }
            Dataset { nodes, edges }
        })
}

// ---------------------------------------------------------------------
// Wire writers: one logical dataset, three encodings. Payloads are
// alphanumeric by construction, so no format needs escaping.
// ---------------------------------------------------------------------

fn to_pgt(d: &Dataset) -> String {
    let mut out = String::new();
    let props = |ps: &[(&'static str, V)]| -> String {
        if ps.is_empty() {
            "-".into()
        } else {
            ps.iter()
                .map(|(k, v)| format!("{k}={}", v.wire()))
                .collect::<Vec<_>>()
                .join(",")
        }
    };
    for n in &d.nodes {
        out.push_str(&format!("N {} {} {}\n", n.id, n.label, props(&n.props)));
    }
    for e in &d.edges {
        out.push_str(&format!(
            "E {} {} {} {}\n",
            e.src,
            e.tgt,
            e.label,
            props(&e.props)
        ));
    }
    out
}

fn to_jsonl(d: &Dataset) -> String {
    let mut out = String::new();
    let props = |ps: &[(&'static str, V)]| -> String {
        ps.iter()
            .map(|(k, v)| format!("\"{k}\":{}", v.json()))
            .collect::<Vec<_>>()
            .join(",")
    };
    for n in &d.nodes {
        out.push_str(&format!(
            "{{\"type\":\"node\",\"id\":\"{}\",\"labels\":[\"{}\"],\"props\":{{{}}}}}\n",
            n.id,
            n.label,
            props(&n.props)
        ));
    }
    for e in &d.edges {
        out.push_str(&format!(
            "{{\"type\":\"edge\",\"src\":\"{}\",\"tgt\":\"{}\",\"labels\":[\"{}\"],\"props\":{{{}}}}}\n",
            e.src,
            e.tgt,
            e.label,
            props(&e.props)
        ));
    }
    out
}

/// A CSV row: the fixed leading columns plus the element's properties.
type CsvRow = (Vec<String>, Vec<(&'static str, V)>);

/// CSV pair (nodes.csv, edges.csv): header = union of keys in first-seen
/// order, empty unquoted cell = absent property.
fn to_csv(d: &Dataset) -> (String, String) {
    fn table(head: &str, rows: &[CsvRow]) -> String {
        let mut keys: Vec<&'static str> = Vec::new();
        for (_, props) in rows {
            for (k, _) in props {
                if !keys.contains(k) {
                    keys.push(k);
                }
            }
        }
        let mut out = String::from(head);
        for k in &keys {
            out.push(',');
            out.push_str(k);
        }
        out.push('\n');
        for (fixed, props) in rows {
            out.push_str(&fixed.join(","));
            for k in &keys {
                out.push(',');
                if let Some((_, v)) = props.iter().find(|(pk, _)| pk == k) {
                    out.push_str(&v.wire());
                }
            }
            out.push('\n');
        }
        out
    }
    let node_rows: Vec<CsvRow> = d
        .nodes
        .iter()
        .map(|n| (vec![n.id.clone(), n.label.clone()], n.props.clone()))
        .collect();
    let edge_rows: Vec<CsvRow> = d
        .edges
        .iter()
        .map(|e| {
            (
                vec![e.src.clone(), e.tgt.clone(), e.label.clone()],
                e.props.clone(),
            )
        })
        .collect();
    (
        table("id,labels", &node_rows),
        table("src,tgt,labels", &edge_rows),
    )
}

// ---------------------------------------------------------------------
// Harness plumbing: discovery, validation drivers, exactness assertion.
// ---------------------------------------------------------------------

fn compile_from_pgt(pgt: &str) -> CompiledSchema {
    let (g, w) = read_all(PgtSource::new(pgt.as_bytes())).expect("clean pgt parses");
    assert_eq!(w.unresolved_edges, 0, "generator emitted a dangling edge");
    let schema = Discoverer::new(PipelineConfig::elsh_adaptive())
        .discover(&g)
        .schema;
    CompiledSchema::compile(&schema)
}

fn run_source<S: RawGraphSource>(
    compiled: &CompiledSchema,
    mut src: S,
    chunk: usize,
) -> pg_hive_core::StreamValidationReport {
    let mut v = pg_hive_core::Validator::new(compiled).with_max_examples(usize::MAX);
    assert!(v.validate_source(&mut src, chunk, |_, _| {}).unwrap());
    v.finish()
}

/// Validate the pgt text shard-parallel: lines partitioned round-robin
/// across `shards` validators, folded with `merge`, finished once — the
/// shape `pg-hive validate` uses for directory trees.
fn run_sharded(
    compiled: &CompiledSchema,
    pgt: &str,
    shards: usize,
    chunk: usize,
) -> pg_hive_core::StreamValidationReport {
    let mut parts = vec![String::new(); shards];
    for (i, line) in pgt.lines().enumerate() {
        parts[i % shards].push_str(line);
        parts[i % shards].push('\n');
    }
    let mut merged: Option<pg_hive_core::Validator<'_>> = None;
    for part in &parts {
        let mut v = pg_hive_core::Validator::new(compiled).with_max_examples(usize::MAX);
        assert!(v
            .validate_source(&mut PgtSource::new(part.as_bytes()), chunk, |_, _| {})
            .unwrap());
        match &mut merged {
            None => merged = Some(v),
            Some(m) => m.merge(v),
        }
    }
    merged.expect("at least one shard").finish()
}

/// The exactness oracle: the reported violation multiset — as
/// (category, element id) pairs — must equal the injected set, and the
/// per-category counters must agree with it.
fn assert_exact(
    report: &pg_hive_core::StreamValidationReport,
    expected: &[(ViolationKind, String)],
    ctx: &str,
) {
    let mut got: Vec<(ViolationKind, String)> = report
        .examples
        .iter()
        .map(|v| (v.kind, v.element.clone()))
        .collect();
    let mut want = expected.to_vec();
    got.sort();
    want.sort();
    assert_eq!(got, want, "{ctx}: wrong violation set");
    assert_eq!(report.total() as usize, expected.len(), "{ctx}: count");
    for kind in ViolationKind::ALL {
        let n = expected.iter().filter(|(k, _)| *k == kind).count() as u64;
        assert_eq!(report.count(kind), n, "{ctx}: counter for {kind}");
    }
}

// ---------------------------------------------------------------------
// The injected mutations.
// ---------------------------------------------------------------------

/// Which typed mutations to plant, with raw index entropy; targets are
/// made distinct inside `apply` (persons ≥ 2, places ≥ 1 by
/// construction, so drop/retype never collide and relabel always has an
/// isolated victim).
#[derive(Clone, Debug)]
struct MutationPlan {
    drop_key: bool,
    retype: bool,
    relabel: bool,
    ghost: bool,
    idx: (u8, u8, u8, u8),
}

fn arb_plan() -> impl Strategy<Value = MutationPlan> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
    )
        .prop_map(|(drop_key, retype, relabel, ghost, idx)| MutationPlan {
            drop_key,
            retype,
            relabel,
            ghost,
            idx,
        })
}

impl MutationPlan {
    /// Mutate a copy of the clean dataset; returns the mutated dataset
    /// and the exact violation set validation must recover.
    fn apply(&self, clean: &Dataset) -> (Dataset, Vec<(ViolationKind, String)>) {
        let mut d = clean.clone();
        let mut expected = Vec::new();
        let persons: Vec<usize> = d
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.label == "Person")
            .map(|(i, _)| i)
            .collect();
        let places: Vec<usize> = d
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.label == "Place")
            .map(|(i, _)| i)
            .collect();
        // At least one mutation always lands, so every case is a defect
        // case (clean recovery is asserted separately).
        let drop_key = self.drop_key || !(self.retype || self.relabel || self.ghost);
        let di = persons[self.idx.0 as usize % persons.len()];
        if drop_key {
            // Drop the mandatory `age` of one Person.
            let n = &mut d.nodes[di];
            n.props.retain(|(k, _)| *k != "age");
            expected.push((ViolationKind::MissingKey, n.id.clone()));
        }
        if self.retype {
            // Retype another Person's `age` (declared INT) to a string.
            let ri = persons[(self.idx.0 as usize + 1 + self.idx.1 as usize % (persons.len() - 1))
                % persons.len()];
            debug_assert_ne!(ri, di);
            let n = &mut d.nodes[ri];
            for (k, v) in &mut n.props {
                if *k == "age" {
                    *v = V::Str("notanumber".into());
                }
            }
            expected.push((ViolationKind::TypeMismatch, n.id.clone()));
        }
        if self.relabel {
            // Relabel an isolated Place: exactly one unknown-label-set
            // violation, no endpoint fallout (Places are never endpoints).
            let n = &mut d.nodes[places[self.idx.2 as usize % places.len()]];
            n.label = "Mutant".into();
            expected.push((ViolationKind::UnknownNodeLabels, n.id.clone()));
        }
        if self.ghost && !d.edges.is_empty() {
            // Point one edge at an id no record declares.
            let ei = self.idx.3 as usize % d.edges.len();
            let e = &mut d.edges[ei];
            e.tgt = "ghost0".into();
            expected.push((
                ViolationKind::DanglingEndpoint,
                format!("{}->ghost0", e.src),
            ));
        }
        (d, expected)
    }
}

// ---------------------------------------------------------------------
// The properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Discover → the schema validates clean against its own source, in
    /// all three wire formats, at resident-sized and single-record
    /// chunks.
    #[test]
    fn discovered_schema_validates_clean_in_every_format(d in arb_dataset()) {
        let pgt = to_pgt(&d);
        let compiled = compile_from_pgt(&pgt);
        for chunk in [1, usize::MAX] {
            let r = run_source(&compiled, PgtSource::new(pgt.as_bytes()), chunk);
            prop_assert!(r.is_valid(), "pgt chunk {chunk}: {:?}", r.examples);
            prop_assert_eq!(r.nodes_checked as usize, d.nodes.len());
            prop_assert_eq!(r.edges_checked as usize, d.edges.len());

            let jsonl = to_jsonl(&d);
            let r = run_source(&compiled, JsonlSource::new(jsonl.as_bytes()), chunk);
            prop_assert!(r.is_valid(), "jsonl chunk {chunk}: {:?}", r.examples);

            let (nodes, edges) = to_csv(&d);
            let src = CsvSource::new(Cursor::new(nodes), Some(Cursor::new(edges)));
            let r = run_source(&compiled, src, chunk);
            prop_assert!(r.is_valid(), "csv chunk {chunk}: {:?}", r.examples);
        }
    }

    /// k injected defects are recovered exactly — category, element id,
    /// and count — across chunk sizes 1–8, all three wire formats, and
    /// shard counts 1–3.
    #[test]
    fn injected_violations_are_recovered_exactly(
        d in arb_dataset(),
        plan in arb_plan(),
    ) {
        let compiled = compile_from_pgt(&to_pgt(&d));
        let (mutated, expected) = plan.apply(&d);
        let pgt = to_pgt(&mutated);

        for chunk in 1..=8usize {
            let r = run_source(&compiled, PgtSource::new(pgt.as_bytes()), chunk);
            assert_exact(&r, &expected, &format!("pgt chunk {chunk}"));
        }

        let jsonl = to_jsonl(&mutated);
        let r = run_source(&compiled, JsonlSource::new(jsonl.as_bytes()), 3);
        assert_exact(&r, &expected, "jsonl");

        let (nodes, edges) = to_csv(&mutated);
        let src = CsvSource::new(Cursor::new(nodes), Some(Cursor::new(edges)));
        let r = run_source(&compiled, src, 3);
        assert_exact(&r, &expected, "csv");

        for shards in 1..=3usize {
            let r = run_sharded(&compiled, &pgt, shards, 4);
            assert_exact(&r, &expected, &format!("{shards} shard(s)"));
        }
    }
}

/// Deterministic sanity: each wire format's own serialization discovers a
/// schema that validates that same serialization clean (not just the
/// pgt-discovered one).
#[test]
fn each_format_self_validates_clean() {
    let d = Dataset {
        nodes: vec![
            NodeSpec {
                id: "p0".into(),
                label: "Person".into(),
                props: vec![("name", V::Str("a".into())), ("age", V::Int(30))],
            },
            NodeSpec {
                id: "p1".into(),
                label: "Person".into(),
                props: vec![("name", V::Str("b".into())), ("age", V::Int(31))],
            },
            NodeSpec {
                id: "o0".into(),
                label: "Org".into(),
                props: vec![("url", V::Str("u".into()))],
            },
        ],
        edges: vec![EdgeSpec {
            src: "p0".into(),
            tgt: "o0".into(),
            label: "WORKS_AT".into(),
            props: vec![("from", V::Int(2001))],
        }],
    };
    let discover = |g: &pg_hive_graph::PropertyGraph| {
        Discoverer::new(PipelineConfig::elsh_adaptive())
            .discover(g)
            .schema
    };

    let pgt = to_pgt(&d);
    let (g, _) = read_all(PgtSource::new(pgt.as_bytes())).unwrap();
    let c = CompiledSchema::compile(&discover(&g));
    assert!(run_source(&c, PgtSource::new(pgt.as_bytes()), 2).is_valid());

    let jsonl = to_jsonl(&d);
    let (g, _) = read_all(JsonlSource::new(jsonl.as_bytes())).unwrap();
    let c = CompiledSchema::compile(&discover(&g));
    assert!(run_source(&c, JsonlSource::new(jsonl.as_bytes()), 2).is_valid());

    let (nodes, edges) = to_csv(&d);
    let (g, _) = read_all(CsvSource::new(
        Cursor::new(nodes.clone()),
        Some(Cursor::new(edges.clone())),
    ))
    .unwrap();
    let c = CompiledSchema::compile(&discover(&g));
    let src = CsvSource::new(Cursor::new(nodes), Some(Cursor::new(edges)));
    assert!(run_source(&c, src, 2).is_valid());
}
