//! The determinism contract of the pipeline-parallel streaming engine:
//! `Discoverer::discover_stream_parallel` must be **byte-identical** to the
//! serial `discover_stream` — same serialized schema, same element totals,
//! same chunk count, same ingestion warnings — for every thread count and
//! every wire format. This is the CI gate behind `BENCH_stream.json`'s
//! parallel run.

use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_graph::loader::save_text;
use pg_hive_graph::stream::csv::{save_edges_csv, save_nodes_csv, CsvSource};
use pg_hive_graph::stream::jsonl::{save_jsonl, JsonlSource};
use pg_hive_graph::stream::pgt::PgtSource;
use pg_hive_graph::{
    ChunkedTextReader, GraphBuilder, PropertyGraph, RawGraphSource, ReadAheadChunks,
    StreamWarnings, Value,
};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Random small graphs mixing labeled/unlabeled nodes, several node and
/// edge types, optional properties — enough variety to produce multi-chunk
/// streams with cross-chunk edges in every format.
fn arb_graph() -> impl Strategy<Value = PropertyGraph> {
    let node = (
        0u8..4,
        any::<bool>(),
        proptest::collection::vec(any::<bool>(), 3),
    );
    (
        proptest::collection::vec(node, 1..30),
        proptest::collection::vec((0u8..30, 0u8..30, 0u8..3), 0..25),
    )
        .prop_map(|(nodes, edges)| {
            let mut b = GraphBuilder::new();
            let mut ids = Vec::new();
            for (ty, labeled, key_mask) in &nodes {
                let label = format!("T{ty}");
                let labels: Vec<&str> = if *labeled { vec![&label] } else { vec![] };
                let keys = ["alpha", "beta", "gamma"];
                let values = [
                    Value::Int(7),
                    Value::from("s, \"q\"=x %"),
                    Value::Float(0.5),
                ];
                let props: Vec<(&str, Value)> = keys
                    .iter()
                    .zip(key_mask)
                    .enumerate()
                    .filter(|(_, (_, &m))| m)
                    .map(|(i, (k, _))| (*k, values[i].clone()))
                    .collect();
                ids.push(b.add_node(&labels, &props));
            }
            for (s, t, e) in &edges {
                let si = *s as usize % ids.len();
                let ti = *t as usize % ids.len();
                let label = format!("E{e}");
                b.add_edge(ids[si], ids[ti], &[&label], &[("w", Value::Int(*e as i64))]);
            }
            b.finish()
        })
}

/// Everything the streaming engine is accountable for, reduced to bytes:
/// the strict PG-Schema text (types, properties, constraints, datatypes,
/// cardinalities), the element total, and the chunk count.
fn run_digest(result: &pg_hive_core::StreamResult) -> (String, u64, usize) {
    (
        pg_hive_core::serialize::pg_schema_strict(&result.schema, "P"),
        result.elements,
        result.chunk_times.len(),
    )
}

/// Collect a chunk stream from a source, returning chunks + final warnings.
fn chunks_of<S: RawGraphSource>(
    source: S,
    chunk_size: usize,
) -> (Vec<PropertyGraph>, StreamWarnings) {
    let mut r = ChunkedTextReader::new(source, chunk_size);
    let mut out = Vec::new();
    while let Some(c) = r.next_chunk().expect("chunking generated text") {
        out.push(c);
    }
    (out, r.warnings())
}

/// Serial vs parallel digests for one format's chunk stream, across thread
/// counts 1–4. `make_chunks` is called fresh per run so each run consumes
/// its own stream.
fn assert_parallel_equals_serial(
    format: &str,
    make_chunks: &dyn Fn() -> (Vec<PropertyGraph>, StreamWarnings),
) -> Result<(), TestCaseError> {
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let (chunks, serial_warnings) = make_chunks();
    let serial = run_digest(&d.discover_stream(chunks));
    for threads in 1..=4usize {
        let (chunks, warnings) = make_chunks();
        prop_assert_eq!(
            warnings,
            serial_warnings,
            "{} ingestion warnings must not depend on the run",
            format
        );
        let par = run_digest(&d.discover_stream_parallel(chunks, threads));
        prop_assert_eq!(
            &par,
            &serial,
            "{} with {} threads diverged from serial",
            format,
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel streaming discovery == serial streaming discovery,
    /// byte-for-byte, across thread counts 1–4 and all three wire formats.
    #[test]
    fn parallel_equals_serial_across_threads_and_formats(g in arb_graph(), chunk in 3usize..12) {
        let pgt = save_text(&g);
        assert_parallel_equals_serial("pgt", &|| {
            chunks_of(PgtSource::new(pgt.as_bytes()), chunk)
        })?;

        let nodes_csv = save_nodes_csv(&g);
        let edges_csv = save_edges_csv(&g);
        assert_parallel_equals_serial("csv", &|| {
            chunks_of(
                CsvSource::new(nodes_csv.as_bytes(), Some(edges_csv.as_bytes())),
                chunk,
            )
        })?;

        let jsonl = save_jsonl(&g);
        assert_parallel_equals_serial("jsonl", &|| {
            chunks_of(JsonlSource::new(jsonl.as_bytes()), chunk)
        })?;
    }

    /// The full engine — read-ahead producer feeding the worker pool — is
    /// also byte-identical to the plain serial path, and the producer's
    /// summary matches direct chunking.
    #[test]
    fn read_ahead_plus_workers_equals_serial(g in arb_graph(), chunk in 3usize..12) {
        let pgt = save_text(&g);
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let (chunks, direct_warnings) = chunks_of(PgtSource::new(pgt.as_bytes()), chunk);
        let direct_count = chunks.len();
        let serial = run_digest(&d.discover_stream(chunks));
        for (threads, depth) in [(2usize, 1usize), (3, 4)] {
            let source = PgtSource::new(std::io::Cursor::new(pgt.clone().into_bytes()));
            let mut ahead = ReadAheadChunks::spawn(source, chunk, depth);
            let mut err = None;
            let result = d.discover_stream_parallel(
                std::iter::from_fn(|| match ahead.next_chunk() {
                    Ok(c) => c,
                    Err(e) => { err = Some(e); None }
                }),
                threads,
            );
            prop_assert!(err.is_none(), "stream error: {:?}", err);
            let summary = *ahead.summary().expect("summary after exhaustion");
            prop_assert_eq!(summary.warnings, direct_warnings);
            prop_assert_eq!(summary.chunks, direct_count);
            prop_assert_eq!(&run_digest(&result), &serial);
        }
    }
}
