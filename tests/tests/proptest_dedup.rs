//! Property tests for the signature-dedup + parallel LSH engine:
//!
//! 1. The dedup fast path (`PipelineConfig::dedup = true`, the default)
//!    produces a clustering **identical** to the naive per-element path on
//!    arbitrary graphs, for both LSH families, through the whole pipeline.
//! 2. The parallel flat-matrix kernels give **byte-identical** assignments
//!    to the sequential scalar reference for any fixed seed (the `parallel`
//!    feature is on by default, so `elsh_cluster`/`minhash_cluster` runs
//!    multi-threaded here whenever the input is large enough).

use pg_hive_core::{ClusterMethod, Discoverer, PipelineConfig};
use pg_hive_graph::{GraphBuilder, PropertyGraph, Value};
use pg_hive_lsh::{
    elsh_cluster, minhash_cluster, reference, ElshParams, MinHashParams, VectorMatrix,
};
use proptest::prelude::*;

/// Random small graph with heavy signature duplication: up to 6 templates
/// over up to 120 nodes, so `rep_of` actually collapses elements.
fn arb_graph() -> impl Strategy<Value = PropertyGraph> {
    let node = (
        0u8..6,
        any::<bool>(),
        proptest::collection::vec(any::<bool>(), 3),
    );
    (
        proptest::collection::vec(node, 1..120),
        proptest::collection::vec((0u8..120, 0u8..120, 0u8..3), 0..80),
    )
        .prop_map(|(nodes, edges)| {
            let mut b = GraphBuilder::new();
            let mut ids = Vec::new();
            for (ty, labeled, key_mask) in &nodes {
                let label = format!("T{ty}");
                let labels: Vec<&str> = if *labeled { vec![&label] } else { vec![] };
                let keys = ["alpha", "beta", "gamma"];
                let props: Vec<(&str, Value)> = keys
                    .iter()
                    .zip(key_mask)
                    .filter(|(_, &m)| m)
                    .map(|(k, _)| (*k, Value::Int(*ty as i64)))
                    .collect();
                ids.push(b.add_node(&labels, &props));
            }
            for (s, t, e) in &edges {
                let si = *s as usize % ids.len();
                let ti = *t as usize % ids.len();
                let label = format!("E{e}");
                b.add_edge(ids[si], ids[ti], &[&label], &[]);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dedup_pipeline_equals_naive_pipeline(g in arb_graph()) {
        for method in [ClusterMethod::Elsh, ClusterMethod::MinHash] {
            let fast = Discoverer::new(PipelineConfig {
                method,
                dedup: true,
                ..PipelineConfig::default()
            })
            .discover(&g);
            let naive = Discoverer::new(PipelineConfig {
                method,
                dedup: false,
                ..PipelineConfig::default()
            })
            .discover(&g);
            // Raw LSH cluster ids match element-for-element — not just the
            // partition, the numbering too.
            prop_assert_eq!(
                &fast.node_cluster_assignment,
                &naive.node_cluster_assignment
            );
            prop_assert_eq!(
                &fast.edge_cluster_assignment,
                &naive.edge_cluster_assignment
            );
            // And therefore the whole downstream schema agrees.
            prop_assert_eq!(&fast.schema, &naive.schema);
            prop_assert_eq!(&fast.node_assignment, &naive.node_assignment);
            // The fast path hashed no more points than the naive one.
            prop_assert!(fast.stats.node_signatures <= naive.stats.node_signatures);
        }
    }

    #[test]
    fn parallel_elsh_matches_serial_reference(
        points in proptest::collection::vec(
            proptest::collection::vec(-8.0f32..8.0, 6), 1..40),
        dups in 1usize..200,
        seed in 0u64..1000
    ) {
        // Tile the points so the input crosses the parallel threshold for
        // larger cases; duplicates also exercise bucket chaining.
        let tiled: Vec<Vec<f32>> = points
            .iter()
            .cycle()
            .take(points.len() * (1 + dups / points.len().max(1)).min(80) + dups)
            .cloned()
            .collect();
        let params = ElshParams {
            bucket_width: 0.8,
            tables: 9,
            hashes_per_table: 3,
            seed,
        };
        let fast = elsh_cluster(&VectorMatrix::from_rows(&tiled), &params);
        let serial = reference::elsh_cluster_scalar(&tiled, &params);
        prop_assert_eq!(fast.assignment, serial.assignment);
        prop_assert_eq!(fast.num_clusters, serial.num_clusters);
    }

    #[test]
    fn parallel_minhash_matches_serial_reference(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u64..50, 0..8), 1..60),
        seed in 0u64..1000
    ) {
        let tiled: Vec<Vec<u64>> = sets.iter().cycle().take(sets.len() * 40).cloned().collect();
        let params = MinHashParams {
            bands: 12,
            rows_per_band: 2,
            seed,
        };
        let fast = minhash_cluster(&tiled, &params);
        let serial = reference::minhash_cluster_scalar(&tiled, &params);
        prop_assert_eq!(fast.assignment, serial.assignment);
        prop_assert_eq!(fast.num_clusters, serial.num_clusters);
    }
}
