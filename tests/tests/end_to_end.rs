//! End-to-end integration: dataset generation → discovery → evaluation,
//! across crates.

use pg_hive_baselines::Method;
use pg_hive_core::{ClusterMethod, Discoverer, PipelineConfig};
use pg_hive_datasets::{inject_noise, DatasetId, NoiseSpec};
use pg_hive_eval::majority_f1;

fn discover(dataset: DatasetId, method: ClusterMethod, noise: &NoiseSpec) -> (f64, f64) {
    let mut d = dataset.generate(0.05, 77);
    inject_noise(&mut d.graph, noise);
    let cfg = PipelineConfig {
        method,
        seed: 77,
        ..PipelineConfig::elsh_adaptive()
    };
    let r = Discoverer::new(cfg).discover(&d.graph);
    let nf1 = majority_f1(&r.node_cluster_assignment, &d.truth.node_types);
    let ef1 = majority_f1(&r.edge_cluster_assignment, &d.truth.edge_types);
    (nf1.macro_f1, ef1.macro_f1)
}

#[test]
fn elsh_clean_runs_are_near_perfect_on_all_datasets() {
    for id in DatasetId::ALL {
        let (nodes, edges) = discover(id, ClusterMethod::Elsh, &NoiseSpec::clean());
        assert!(nodes > 0.9, "{}: node F1 = {nodes}", id.name());
        assert!(edges > 0.9, "{}: edge F1 = {edges}", id.name());
    }
}

#[test]
fn minhash_clean_runs_are_strong_on_all_datasets() {
    for id in DatasetId::ALL {
        let (nodes, edges) = discover(id, ClusterMethod::MinHash, &NoiseSpec::clean());
        assert!(nodes > 0.85, "{}: node F1 = {nodes}", id.name());
        assert!(edges > 0.85, "{}: edge F1 = {edges}", id.name());
    }
}

#[test]
fn elsh_resists_heavy_noise_with_full_labels() {
    for id in [DatasetId::Pole, DatasetId::Ldbc, DatasetId::Cord19] {
        let (nodes, edges) = discover(id, ClusterMethod::Elsh, &NoiseSpec::grid(40, 100, 7));
        assert!(nodes > 0.9, "{}: node F1 = {nodes}", id.name());
        assert!(edges > 0.9, "{}: edge F1 = {edges}", id.name());
    }
}

#[test]
fn elsh_works_without_any_labels() {
    // At this tiny test scale each type has few instances, so structure-only
    // discovery is much harder than at benchmark scale; the bar here is
    // "far better than chance and the baselines' zero".
    for id in [DatasetId::Pole, DatasetId::Cord19] {
        let (nodes, _) = discover(id, ClusterMethod::Elsh, &NoiseSpec::grid(0, 0, 7));
        assert!(nodes > 0.5, "{}: node F1 = {nodes}", id.name());
    }
}

#[test]
fn pg_hive_beats_schemi_on_multilabel_connectome() {
    // MB6's types are multi-label combinations; SchemI collapses them.
    let d = DatasetId::Mb6.generate(0.05, 5);
    let hive = Method::PgHiveElsh.run(&d.graph, 5).unwrap();
    let schemi = Method::SchemI.run(&d.graph, 5).unwrap();
    let hive_f1 = majority_f1(&hive.edge_assignment.unwrap(), &d.truth.edge_types);
    let schemi_f1 = majority_f1(&schemi.edge_assignment.unwrap(), &d.truth.edge_types);
    assert!(
        hive_f1.macro_f1 > schemi_f1.macro_f1 + 0.2,
        "hive {} vs schemi {}",
        hive_f1.macro_f1,
        schemi_f1.macro_f1
    );
}

#[test]
fn gmm_degrades_with_noise_while_elsh_does_not() {
    let clean = {
        let d = DatasetId::Pole.generate(0.08, 3);
        let out = Method::GmmSchema.run(&d.graph, 3).unwrap();
        majority_f1(&out.node_assignment, &d.truth.node_types).macro_f1
    };
    let noisy_gmm = {
        let mut d = DatasetId::Pole.generate(0.08, 3);
        inject_noise(&mut d.graph, &NoiseSpec::grid(40, 100, 3));
        let out = Method::GmmSchema.run(&d.graph, 3).unwrap();
        majority_f1(&out.node_assignment, &d.truth.node_types).macro_f1
    };
    let noisy_elsh = {
        let mut d = DatasetId::Pole.generate(0.08, 3);
        inject_noise(&mut d.graph, &NoiseSpec::grid(40, 100, 3));
        let out = Method::PgHiveElsh.run(&d.graph, 3).unwrap();
        majority_f1(&out.node_assignment, &d.truth.node_types).macro_f1
    };
    assert!(clean > 0.85, "GMM clean = {clean}");
    assert!(
        noisy_gmm < clean - 0.05,
        "GMM should degrade: clean {clean} vs noisy {noisy_gmm}"
    );
    assert!(noisy_elsh > 0.9, "ELSH noisy = {noisy_elsh}");
}

#[test]
fn schema_is_complete_for_every_observed_label_and_key() {
    // Type completeness (§4.7): no label or property of the graph is lost.
    let d = DatasetId::Hetio.generate(0.05, 13);
    let r = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&d.graph);
    let labels = r.schema.node_label_universe();
    let keys = r.schema.node_key_universe();
    for (_, n) in d.graph.nodes() {
        for &l in &n.labels {
            assert!(labels.contains(d.graph.label_str(l)));
        }
        for k in n.keys() {
            assert!(keys.contains(d.graph.key_str(k)));
        }
    }
}

#[test]
fn every_element_is_assigned_to_exactly_one_type() {
    let d = DatasetId::Icij.generate(0.05, 17);
    let r = Discoverer::new(PipelineConfig::minhash_default()).discover(&d.graph);
    assert_eq!(r.node_assignment.len(), d.graph.node_count());
    assert_eq!(r.edge_assignment.len(), d.graph.edge_count());
    // Membership lists partition the elements.
    let member_total: usize = r.schema.node_types.iter().map(|t| t.members.len()).sum();
    assert_eq!(member_total, d.graph.node_count());
}
