//! End-to-end check for the `pg-hive merge-state` streaming fold.
//!
//! The CLI folds saved snapshots **two-at-a-time**: the first file becomes
//! the base context and every further file is loaded, merged, and dropped
//! before the next one is opened, so peak residency is two contexts no
//! matter how many snapshots are folded. Because `SchemaState::merge` is
//! associative and commutative and registry/pending merging is a plain
//! union/concatenation, that fold must be **byte-identical** — in the
//! serialized snapshot and in the strict schema text — to materializing
//! every `ResumeContext` up front and folding them all at once. This test
//! pins that equivalence over many snapshots, and additionally checks the
//! merged-and-resolved schema equals the single uninterrupted run over the
//! concatenated input (the semantic guarantee `merge-state` exists for).

use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::snapshot::{ResumeContext, Snapshot, SnapshotConfig};
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_graph::loader::save_text;
use pg_hive_graph::stream::pgt::PgtSource;
use pg_hive_graph::{ChunkedTextReader, GraphBuilder, LabelSetRegistry, PropertyGraph, Value};
use std::io::Cursor;
use std::path::{Path, PathBuf};

/// A graph whose pgt serialization interleaves enough structure that
/// splitting it into parts strands edges away from their endpoint
/// declarations — every part carries cross-input pending edges.
fn sample_graph() -> PropertyGraph {
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for i in 0..24u32 {
        let (labels, props): (Vec<&str>, Vec<(&str, Value)>) = match i % 3 {
            0 => (
                vec!["Person"],
                vec![
                    ("name", Value::from(format!("p{i}"))),
                    ("age", Value::Int(20 + i as i64)),
                ],
            ),
            1 => (vec!["Org"], vec![("url", Value::from(format!("o{i}.com")))]),
            _ => (vec![], vec![("note", Value::from("anon"))]),
        };
        ids.push(b.add_node(&labels, &props));
    }
    for i in 0..20usize {
        let (s, t) = (ids[i], ids[(i * 7 + 3) % ids.len()]);
        let label = if i % 2 == 0 { "KNOWS" } else { "WORKS_AT" };
        b.add_edge(s, t, &[label], &[("since", Value::Int(2000 + i as i64))]);
    }
    b.finish()
}

/// Split `text` into `n` roughly equal line-ranges (each part newline
/// terminated when non-empty).
fn split_lines(text: &str, n: usize) -> Vec<String> {
    let lines: Vec<&str> = text.lines().collect();
    let per = lines.len().div_ceil(n);
    lines
        .chunks(per.max(1))
        .map(|c| {
            let mut s = c.join("\n");
            if !s.is_empty() {
                s.push('\n');
            }
            s
        })
        .collect()
}

/// Absorb one part the way `discover --stream --save-state` does —
/// carrying end-of-stream unresolved edges into the snapshot instead of
/// dropping them — and persist it.
fn save_part_snapshot(
    d: &Discoverer,
    config: &SnapshotConfig,
    part: &str,
    chunk: usize,
    path: &Path,
) {
    let mut state = d.new_state();
    let mut reader = ChunkedTextReader::with_registry(
        PgtSource::new(Cursor::new(part.as_bytes().to_vec())),
        chunk,
        LabelSetRegistry::default(),
    );
    reader.set_carry_unresolved(true);
    d.absorb_stream(
        std::iter::from_fn(|| reader.next_chunk().expect("valid generated input")),
        &mut state,
        1,
    );
    let pending = reader.take_pending();
    let registry = reader.into_registry();
    ResumeContext {
        config: config.clone(),
        state,
        registry,
        watch: None,
        pending,
    }
    .save(path)
    .expect("part snapshot saved");
}

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pg-hive-merge-e2e-{}-{tag}", std::process::id()));
    p
}

#[test]
fn streaming_fold_is_byte_identical_to_all_at_once_fold() {
    const PARTS: usize = 7;
    let d = Discoverer::new(PipelineConfig::elsh_adaptive());
    let chunk = 4usize;
    let config = SnapshotConfig::new(d.config(), chunk);
    let text = save_text(&sample_graph());
    let parts = split_lines(&text, PARTS);
    assert_eq!(parts.len(), PARTS);

    let paths: Vec<PathBuf> = (0..PARTS).map(|i| temp_path(&format!("part{i}"))).collect();
    for (part, path) in parts.iter().zip(&paths) {
        save_part_snapshot(&d, &config, part, chunk, path);
    }
    // The split must actually exercise cross-input edges, or the merge
    // fold degenerates to disjoint unions.
    let carried: usize = paths
        .iter()
        .map(|p| ResumeContext::load(p).expect("part loads").pending.len())
        .sum();
    assert!(carried > 0, "expected stranded cross-part edges, got none");

    // Streaming two-at-a-time fold — exactly what `pg-hive merge-state`
    // runs: base := first, then load / merge / drop each further file.
    let (streamed, streamed_collisions) = {
        let mut iter = paths.iter();
        let mut ctx = ResumeContext::load(iter.next().unwrap()).expect("base loads");
        ctx.watch = None;
        let mut collisions = 0u64;
        for p in iter {
            let next = ResumeContext::load(p).expect("next loads");
            collisions += ctx.merge(next).expect("configs match");
        }
        (ctx, collisions)
    };

    // All-at-once fold: materialize every context first, then reduce.
    let (allatonce, allatonce_collisions) = {
        let mut contexts: Vec<ResumeContext> = paths
            .iter()
            .map(|p| ResumeContext::load(p).expect("context loads"))
            .collect();
        let mut ctx = contexts.remove(0);
        ctx.watch = None;
        let mut collisions = 0u64;
        for next in contexts {
            collisions += ctx.merge(next).expect("configs match");
        }
        (ctx, collisions)
    };

    // Library engine (`Snapshot::merge_files`) agrees too.
    let (via_library, library_collisions) =
        Snapshot::merge_files(&paths).expect("merge_files succeeds");

    assert_eq!(streamed_collisions, allatonce_collisions);
    assert_eq!(streamed_collisions, library_collisions);
    assert_eq!(
        streamed.to_snapshot().to_text(),
        allatonce.to_snapshot().to_text(),
        "streaming fold and all-at-once fold must serialize identically"
    );
    assert_eq!(
        streamed.to_snapshot().to_text(),
        via_library.to_snapshot().to_text()
    );

    // Resolve the carried edges against the merged registry (what the CLI
    // does before printing) and compare against the single uninterrupted
    // run over the full input: merge-state must lose nothing at the seams.
    let mut merged = streamed;
    let pending = std::mem::take(&mut merged.pending);
    let (left, _resolved) = d.resolve_pending(&mut merged.state, &merged.registry, pending);
    assert!(left.is_empty(), "all cross-part edges resolve after merge");
    let single = {
        let mut state = d.new_state();
        let mut reader = ChunkedTextReader::with_registry(
            PgtSource::new(Cursor::new(text.into_bytes())),
            chunk,
            LabelSetRegistry::default(),
        );
        d.absorb_stream(
            std::iter::from_fn(|| reader.next_chunk().expect("valid input")),
            &mut state,
            1,
        );
        pg_schema_strict(&state.finalize(), "G")
    };
    assert_eq!(pg_schema_strict(&merged.state.finalize(), "G"), single);

    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}
