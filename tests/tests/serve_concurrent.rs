//! Black-box concurrent-equivalence harness for `pg-hive serve`.
//!
//! The server's correctness claim is the one the canonical `SchemaState`
//! makes checkable from outside (the way Huang et al. check snapshot
//! isolation without opening the database): because absorb is associative
//! and commutative and `finalize()` is deterministic, **any** interleaving
//! of K concurrent clients' ingest requests must leave the tenant with a
//! schema byte-identical to a serial `discover --stream` over the
//! concatenated batches. These properties drive real `TcpStream`s against
//! a real listener — worker pool, HTTP framing, keep-alive reuse and all —
//! and compare strict-schema bytes against the in-process serial oracle.
//!
//! The second property kills the server mid-load (checkpoint → shutdown →
//! warm restart from `--state-dir`) and requires the same identity at the
//! end — restart must be invisible in the final schema.

use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::serve::{bind, RunningServer, ServeCore, ServeOptions};
use pg_hive_core::{Discoverer, PipelineConfig, SignatureCache};
use pg_hive_graph::stream::pgt::PgtSource;
use pg_hive_graph::{ChunkedTextReader, LabelSetRegistry, RawGraphSource};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

// --------------------------------------------------------------------------
// Minimal raw HTTP client
// --------------------------------------------------------------------------

struct HttpReply {
    status: u16,
    body: Vec<u8>,
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> HttpReply {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut len = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                len = v.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("body");
    HttpReply { status, body }
}

/// One keep-alive client connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn request(&mut self, method: &str, target: &str, body: &[u8]) -> HttpReply {
        write!(
            self.stream,
            "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .expect("write head");
        self.stream.write_all(body).expect("write body");
        self.stream.flush().expect("flush");
        read_reply(&mut self.reader)
    }
}

fn get_schema(addr: SocketAddr, tenant: &str) -> String {
    let mut c = Client::connect(addr);
    let reply = c.request("GET", &format!("/v1/{tenant}/schema"), b"");
    assert_eq!(
        reply.status,
        200,
        "schema fetch: {}",
        String::from_utf8_lossy(&reply.body)
    );
    String::from_utf8(reply.body).expect("schema utf8")
}

fn start_server(opts: ServeOptions) -> RunningServer {
    let core = ServeCore::new(Discoverer::new(PipelineConfig::elsh_adaptive()), opts)
        .expect("server core");
    bind("127.0.0.1:0", Arc::new(core)).expect("bind")
}

fn temp_state_dir() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pg-hive-serve-concurrent-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// --------------------------------------------------------------------------
// Scenario generation: a random graph partitioned into K clients' batches
// --------------------------------------------------------------------------

const NODE_LABELS: [&str; 3] = ["Person", "Org", "Device"];
const EDGE_LABELS: [&str; 3] = ["KNOWS", "WORKS_AT", "LINKED_TO"];
const PROP_KEYS: [&str; 4] = ["name", "age", "url", "score"];

/// K clients, each holding an ordered list of pgt record batches.
#[derive(Debug, Clone)]
struct Scenario {
    clients: Vec<Vec<String>>,
}

impl Scenario {
    fn all_batches(&self) -> Vec<String> {
        self.clients.iter().flatten().cloned().collect()
    }
}

fn render_node(i: usize, label: usize, prop_mask: u8) -> String {
    let props: Vec<String> = PROP_KEYS
        .iter()
        .enumerate()
        .filter(|(j, _)| prop_mask & (1 << j) != 0)
        .map(|(j, key)| format!("{key}=v{i}x{j}"))
        .collect();
    let props = if props.is_empty() {
        "-".to_string()
    } else {
        props.join(",")
    };
    format!("N n{i} {} {props}\n", NODE_LABELS[label])
}

fn render_edge(src: usize, dst: usize, label: usize) -> String {
    format!("E n{src} n{dst} {} w=1\n", EDGE_LABELS[label])
}

/// Generate ≥3 clients × random batches over a random graph. Every edge
/// endpoint is declared by *some* batch of *some* client, so at
/// quiescence the server's carried-pending edges have all resolved — the
/// precondition under which serve and the serial reader absorb the same
/// element multiset.
///
/// The vendored proptest has no `prop_flat_map`, so sizes can't shape
/// later strategies; instead we draw max-sized raw material plus the
/// sizes, then slice and remap indices (`% n`, `% k`, `% b`) in one
/// `prop_map`.
const MAX_NODES: usize = 14;
const MAX_EDGES: usize = 12;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let sizes = (
        4usize..MAX_NODES,
        3usize..=5,
        1usize..=3,
        0usize..=MAX_EDGES,
    );
    let material = (
        proptest::collection::vec((0usize..NODE_LABELS.len(), 0u8..16), MAX_NODES),
        proptest::collection::vec(
            (
                0usize..MAX_NODES,
                0usize..MAX_NODES,
                0usize..EDGE_LABELS.len(),
            ),
            MAX_EDGES,
        ),
        proptest::collection::vec((0usize..64, 0usize..64), MAX_NODES + MAX_EDGES),
    );
    (sizes, material).prop_map(|((n, k, b, e), (nodes, edges, slots))| {
        let mut lines = Vec::with_capacity(n + e);
        for (i, (label, mask)) in nodes[..n].iter().enumerate() {
            lines.push(render_node(i, *label, *mask));
        }
        for (src, dst, label) in &edges[..e] {
            lines.push(render_edge(src % n, dst % n, *label));
        }
        let mut clients = vec![vec![String::new(); b]; k];
        for (line, (c, batch)) in lines.into_iter().zip(&slots) {
            clients[c % k][batch % b].push_str(&line);
        }
        Scenario { clients }
    })
}

/// Serial oracle: replay the batches in one fixed order through the
/// offline shard mechanics the server mirrors — fresh reader + fresh
/// registry per batch, merge the batch registry into the running one,
/// stub-resolve carried cross-batch edges after each batch. A request
/// body is the unit of observation exactly as a shard file is offline,
/// so this replay is the canonical serial execution the interleavings
/// must agree with (see the correctness-model docs in
/// `pg_hive_core::serve`).
fn serial_oracle(batches: &[String]) -> String {
    let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
    let cache = SignatureCache::default();
    let mut state = discoverer.new_state();
    let mut registry = LabelSetRegistry::default();
    let mut pending = Vec::new();
    for batch in batches {
        let source: Box<dyn RawGraphSource + Send> =
            Box::new(PgtSource::new(Cursor::new(batch.clone().into_bytes())));
        let mut reader =
            ChunkedTextReader::with_registry(source, 100_000, LabelSetRegistry::default());
        reader.set_carry_unresolved(true);
        let mut chunks = Vec::new();
        while let Some(chunk) = reader.next_chunk().expect("oracle parse") {
            chunks.push(chunk);
        }
        discoverer.absorb_stream_cached(chunks, &mut state, 1, &cache);
        pending.extend(reader.take_pending());
        registry.merge(&reader.into_registry());
        let (left, _) = discoverer.resolve_pending(&mut state, &registry, pending);
        pending = left;
    }
    pg_schema_strict(&state.finalize(), "Discovered")
}

/// Run each client's batches on its own thread against one tenant; the OS
/// scheduler provides the interleaving. Panics (from non-200 responses)
/// propagate through join.
fn run_clients(addr: SocketAddr, tenant: &str, clients: &[Vec<String>]) {
    let handles: Vec<_> = clients
        .iter()
        .cloned()
        .map(|batches| {
            let tenant = tenant.to_string();
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                for body in &batches {
                    let reply =
                        client.request("POST", &format!("/v1/{tenant}/ingest"), body.as_bytes());
                    assert_eq!(
                        reply.status,
                        200,
                        "ingest: {}",
                        String::from_utf8_lossy(&reply.body)
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// ≥3 concurrent clients, random batches, real sockets: the served
    /// schema must be byte-identical to the serial oracle over the
    /// concatenated batches — the black-box commutativity check.
    #[test]
    fn interleaved_clients_match_serial_oracle(scenario in arb_scenario()) {
        let server = start_server(ServeOptions::default());
        let addr = server.addr();
        run_clients(addr, "load", &scenario.clients);
        let served = get_schema(addr, "load");
        server.shutdown();
        prop_assert_eq!(served, serial_oracle(&scenario.all_batches()));
    }

    /// Kill-and-warm-restart mid-load: phase 1 ingests each client's first
    /// batch concurrently, checkpoints, shuts the server down, restarts
    /// from the state dir, then phase 2 ingests the rest concurrently.
    /// The final schema must still match the all-batches oracle — the
    /// restart is invisible.
    #[test]
    fn checkpoint_restart_mid_load_preserves_identity(scenario in arb_scenario()) {
        let dir = temp_state_dir();
        let opts = ServeOptions {
            state_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };

        let phase1: Vec<Vec<String>> = scenario
            .clients
            .iter()
            .map(|batches| batches[..1].to_vec())
            .collect();
        let phase2: Vec<Vec<String>> = scenario
            .clients
            .iter()
            .map(|batches| batches[1..].to_vec())
            .filter(|rest| !rest.is_empty())
            .collect();

        let server = start_server(opts.clone());
        let addr = server.addr();
        run_clients(addr, "load", &phase1);
        let reply = Client::connect(addr).request("POST", "/v1/load/checkpoint", b"");
        prop_assert_eq!(reply.status, 200);
        let mid = get_schema(addr, "load");
        server.shutdown();

        // Warm restart: the tenant must come back byte-identical...
        let server = start_server(opts);
        let addr = server.addr();
        prop_assert_eq!(get_schema(addr, "load"), mid);
        // ...and absorbing the rest must land on the full-load oracle.
        run_clients(addr, "load", &phase2);
        let served = get_schema(addr, "load");
        server.shutdown();
        prop_assert_eq!(served, serial_oracle(&scenario.all_batches()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Deterministic smoke case pinning the harness itself: two clients with
/// fixed disjoint batches, checked against a hand-concatenated oracle.
#[test]
fn two_fixed_clients_round_trip() {
    let a = "N 1 Person name=Ada\nN 2 Person name=Grace\nE 1 2 KNOWS since=1940\n".to_string();
    let b = "N 3 Org name=RS\nE 1 3 WORKS_AT from=1835\n".to_string();
    let scenario = Scenario {
        clients: vec![vec![a], vec![b]],
    };
    let server = start_server(ServeOptions::default());
    let addr = server.addr();
    run_clients(addr, "demo", &scenario.clients);
    let served = get_schema(addr, "demo");
    server.shutdown();
    assert_eq!(served, serial_oracle(&scenario.all_batches()));
    assert!(served.contains("Person"), "{served}");
    assert!(served.contains("WORKS_AT"), "{served}");
}
