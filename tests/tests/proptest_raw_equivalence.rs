//! Property-based equivalence of the two ingestion paths: the zero-copy
//! raw parsers (`RawGraphSource` filling a reused `RecordBuf`) and the
//! owned-record path (`GraphSource` adapted through `OwnedSource`) must be
//! indistinguishable end to end — byte-identical strict schema text and
//! identical stream warnings — on randomized graphs serialized through all
//! three wire formats (pgt, CSV, JSONL) and chunked at randomized sizes.

use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_graph::loader::save_text;
use pg_hive_graph::stream::csv::{save_edges_csv, save_nodes_csv, CsvSource};
use pg_hive_graph::stream::jsonl::{save_jsonl, JsonlSource};
use pg_hive_graph::stream::pgt::PgtSource;
use pg_hive_graph::{
    ChunkedTextReader, GraphBuilder, OwnedSource, PropertyGraph, RawGraphSource, StreamWarnings,
    Value,
};
use proptest::prelude::*;

/// Randomized graph with up to 5 label templates, optional unlabeled
/// nodes, a mixed-kind value per possible key, and random (possibly
/// dangling-free, possibly parallel) edges.
fn arb_graph() -> impl Strategy<Value = PropertyGraph> {
    let node = (
        0u8..5,
        any::<bool>(),
        proptest::collection::vec(any::<bool>(), 4),
    );
    (
        proptest::collection::vec(node, 1..30),
        proptest::collection::vec((0u8..30, 0u8..30, 0u8..3), 0..30),
    )
        .prop_map(|(nodes, edges)| {
            let mut b = GraphBuilder::new();
            let mut ids = Vec::new();
            for (ty, labeled, key_mask) in &nodes {
                let label = format!("T{ty}");
                let labels: Vec<&str> = if *labeled { vec![&label] } else { vec![] };
                let keys = ["alpha", "beta", "gamma", "delta"];
                let values = [
                    Value::Int(41),
                    Value::from("plain text"),
                    Value::from("2024-05-01"),
                    Value::Float(0.5),
                ];
                let props: Vec<(&str, Value)> = keys
                    .iter()
                    .zip(key_mask)
                    .enumerate()
                    .filter(|(_, (_, &m))| m)
                    .map(|(i, (k, _))| (*k, values[i].clone()))
                    .collect();
                ids.push(b.add_node(&labels, &props));
            }
            for (s, t, e) in &edges {
                let si = *s as usize % ids.len();
                let ti = *t as usize % ids.len();
                let label = format!("E{e}");
                b.add_edge(ids[si], ids[ti], &[&label], &[("w", Value::Int(*e as i64))]);
            }
            b.finish()
        })
}

/// Chunk `src` through the streaming pipeline and render the strict schema
/// text; also return the reader's accumulated warnings.
fn stream_strict<S: RawGraphSource>(src: S, chunk_size: usize) -> (String, StreamWarnings) {
    let d = Discoverer::new(PipelineConfig {
        seed: 7,
        ..PipelineConfig::default()
    });
    let mut reader = ChunkedTextReader::new(src, chunk_size);
    let result = d.discover_stream(std::iter::from_fn(|| reader.next_chunk().unwrap()));
    (pg_schema_strict(&result.schema, "G"), reader.warnings())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every format and chunk size, parsing the same serialized bytes
    /// through the raw path and through the owned-record shim must yield
    /// the same strict schema text and the same warning counters. Small
    /// chunk sizes force cross-chunk edges and stub endpoints, so the
    /// registry and pending-edge machinery is exercised on both paths.
    #[test]
    fn raw_and_owned_paths_are_equivalent(g in arb_graph(), chunk_size in 1usize..24) {
        let pgt = save_text(&g);
        let raw = stream_strict(PgtSource::new(pgt.as_bytes()), chunk_size);
        let owned = stream_strict(OwnedSource(PgtSource::new(pgt.as_bytes())), chunk_size);
        prop_assert_eq!(&raw.0, &owned.0, "pgt schema text diverged");
        prop_assert_eq!(raw.1, owned.1, "pgt warnings diverged");

        let nodes_csv = save_nodes_csv(&g);
        let edges_csv = save_edges_csv(&g);
        let raw = stream_strict(
            CsvSource::new(nodes_csv.as_bytes(), Some(edges_csv.as_bytes())),
            chunk_size,
        );
        let owned = stream_strict(
            OwnedSource(CsvSource::new(nodes_csv.as_bytes(), Some(edges_csv.as_bytes()))),
            chunk_size,
        );
        prop_assert_eq!(&raw.0, &owned.0, "csv schema text diverged");
        prop_assert_eq!(raw.1, owned.1, "csv warnings diverged");

        let jsonl = save_jsonl(&g);
        let raw = stream_strict(JsonlSource::new(jsonl.as_bytes()), chunk_size);
        let owned = stream_strict(OwnedSource(JsonlSource::new(jsonl.as_bytes())), chunk_size);
        prop_assert_eq!(&raw.0, &owned.0, "jsonl schema text diverged");
        prop_assert_eq!(raw.1, owned.1, "jsonl warnings diverged");
    }
}
