//! HTTP protocol conformance for `pg-hive serve`: hostile and malformed
//! clients get named 4xx/5xx JSON errors, never a panic, and framing-safe
//! errors leave the connection reusable.
//!
//! The contract under test (documented in `docs/SERVE.md`):
//!
//! - routing errors (unknown tenant/route/verb, wrong method, bad query,
//!   bad body) are **framing-safe** — the request was fully read, so the
//!   same connection must serve the next request;
//! - protocol errors (malformed request line, oversized headers, bad
//!   `Content-Length`, truncated body, timeout) break framing — the
//!   server answers once and closes;
//! - a slow or stalled client is bounded by `--read-timeout`, so a worker
//!   can never be held hostage.

use pg_hive_core::serve::{bind, RunningServer, ServeCore, ServeOptions};
use pg_hive_core::{Discoverer, PipelineConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(opts: ServeOptions) -> RunningServer {
    let core = ServeCore::new(Discoverer::new(PipelineConfig::elsh_adaptive()), opts)
        .expect("server core");
    bind("127.0.0.1:0", Arc::new(core)).expect("bind")
}

struct HttpReply {
    status: u16,
    connection: String,
    body: String,
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> HttpReply {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.starts_with("HTTP/1.1 "), "not an HTTP reply: {line:?}");
    let status: u16 = line.split(' ').nth(1).unwrap().parse().expect("status");
    let mut len = 0usize;
    let mut connection = String::new();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((k, v)) = header.split_once(':') else {
            panic!("malformed reply header {header:?}")
        };
        let k = k.trim().to_ascii_lowercase();
        if k == "content-length" {
            len = v.trim().parse().expect("length");
        } else if k == "connection" {
            connection = v.trim().to_string();
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("body");
    HttpReply {
        status,
        connection,
        body: String::from_utf8(body).expect("utf8 body"),
    }
}

/// Write raw bytes on a fresh connection and read one reply.
fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> HttpReply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write");
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    read_reply(&mut reader)
}

/// Assert the peer closed: the next read on the connection hits EOF.
fn assert_closed(reader: &mut BufReader<TcpStream>) {
    let mut rest = String::new();
    let n = reader.read_line(&mut rest).expect("read after close");
    assert_eq!(n, 0, "server should have closed, got {rest:?}");
}

#[test]
fn malformed_request_line_gets_named_400_and_close() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr();

    let cases: [(&str, u16, &str); 5] = [
        ("TOTAL GARBAGE\r\n\r\n", 400, "bad-request-line"),
        ("GET nopath HTTP/1.1\r\n\r\n", 400, "bad-request-line"),
        ("GET /x HTTP/9.9\r\n\r\n", 505, "unsupported-version"),
        (
            "GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            400,
            "bad-header",
        ),
        (
            "POST /v1/t/ingest HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
            400,
            "bad-content-length",
        ),
    ];
    for (raw, status, name) in cases {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let reply = read_reply(&mut reader);
        assert_eq!(reply.status, status, "{raw:?}: {}", reply.body);
        assert!(
            reply.body.contains(&format!("\"error\":\"{name}\"")),
            "{raw:?}: {}",
            reply.body
        );
        assert_eq!(reply.connection, "close", "{raw:?}");
        assert_closed(&mut reader);
    }
    server.shutdown();
}

#[test]
fn length_less_post_is_an_empty_body_not_an_error() {
    // RFC 7230 §3.3.3: no Content-Length and no Transfer-Encoding means
    // an empty body — this is what `curl -X POST` sends for body-less
    // verbs like checkpoint, so it must not be rejected.
    let server = start_server(ServeOptions::default());
    let reply = raw_roundtrip(server.addr(), b"POST /v1/t/ingest HTTP/1.1\r\n\r\n");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(
        reply.body.contains("\"elements_absorbed\":0"),
        "{}",
        reply.body
    );
    server.shutdown();
}

#[test]
fn oversized_headers_get_431_and_close() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr();

    // One pathologically long header line.
    let raw = format!(
        "GET /healthz HTTP/1.1\r\nx-junk: {}\r\n\r\n",
        "j".repeat(10 << 10)
    );
    let reply = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(reply.status, 431, "{}", reply.body);
    assert!(reply.body.contains("headers-too-large"), "{}", reply.body);

    // Too many individually-small headers.
    let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..100 {
        raw.push_str(&format!("x-h{i}: v\r\n"));
    }
    raw.push_str("\r\n");
    let reply = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(reply.status, 431, "{}", reply.body);
    server.shutdown();
}

#[test]
fn oversized_body_is_refused_by_content_length() {
    let server = start_server(ServeOptions {
        max_body: 1 << 10,
        ..ServeOptions::default()
    });
    let raw = "POST /v1/t/ingest HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
    let reply = raw_roundtrip(server.addr(), raw.as_bytes());
    assert_eq!(reply.status, 413, "{}", reply.body);
    assert!(reply.body.contains("body-too-large"), "{}", reply.body);
    server.shutdown();
}

#[test]
fn routing_errors_keep_the_connection_reusable() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let send = |stream: &mut TcpStream, req: &str| {
        stream.write_all(req.as_bytes()).unwrap();
        stream.flush().unwrap();
    };

    // unknown route → 404, connection stays open...
    send(&mut stream, "GET /nope HTTP/1.1\r\n\r\n");
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 404);
    assert!(reply.body.contains("unknown-route"), "{}", reply.body);
    assert_eq!(reply.connection, "keep-alive");

    // ...unknown tenant on the SAME connection...
    send(&mut stream, "GET /v1/ghost/schema HTTP/1.1\r\n\r\n");
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 404);
    assert!(reply.body.contains("unknown-tenant"), "{}", reply.body);

    // ...wrong method...
    send(
        &mut stream,
        "POST /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    );
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 405);
    assert!(reply.body.contains("method-not-allowed"), "{}", reply.body);

    // ...invalid tenant name...
    send(&mut stream, "GET /v1/.sneaky/schema HTTP/1.1\r\n\r\n");
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 400);
    assert!(reply.body.contains("invalid-tenant"), "{}", reply.body);

    // ...a bad ingest body (fully read → framing intact)...
    let body = "this is not pgt\n";
    send(
        &mut stream,
        &format!(
            "POST /v1/t/ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 400);
    assert!(reply.body.contains("bad-body"), "{}", reply.body);

    // ...and the SAME connection still serves a real request.
    send(&mut stream, "GET /healthz HTTP/1.1\r\n\r\n");
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("\"status\":\"ok\""), "{}", reply.body);
    server.shutdown();
}

#[test]
fn slow_client_is_bounded_by_the_read_timeout() {
    let server = start_server(ServeOptions {
        read_timeout: Duration::from_millis(300),
        ..ServeOptions::default()
    });
    let addr = server.addr();

    // Half a request line, then stall: the server must answer 408 within
    // the timeout bound (with slack), not hang a worker forever.
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /heal").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 408, "{}", reply.body);
    assert!(
        reply.body.contains("\"error\":\"timeout\""),
        "{}",
        reply.body
    );
    assert_eq!(reply.connection, "close");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout took {:?}",
        started.elapsed()
    );

    // A declared body that never arrives is the same story.
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /v1/t/ingest HTTP/1.1\r\nContent-Length: 50\r\n\r\nN 1")
        .unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 408, "{}", reply.body);
    assert!(started.elapsed() < Duration::from_secs(5));

    // An idle keep-alive connection (zero bytes of a next request) is
    // closed silently — no 408 spam in the log, just EOF.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream);
    assert_closed(&mut reader);
    server.shutdown();
}

#[test]
fn abuse_does_not_poison_the_server() {
    let server = start_server(ServeOptions {
        read_timeout: Duration::from_millis(200),
        workers: 2,
        ..ServeOptions::default()
    });
    let addr = server.addr();

    // Throw every class of abuse at it...
    let _ = raw_roundtrip(addr, b"GARBAGE\r\n\r\n");
    let _ = raw_roundtrip(addr, b"GET /x HTTP/9.9\r\n\r\n");
    let _ = raw_roundtrip(
        addr,
        b"POST /v1/t/ingest HTTP/1.1\r\nContent-Length: -3\r\n\r\n",
    );
    for _ in 0..3 {
        // stalled connections, dropped without completing a request
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(b"GET /par");
        drop(s);
    }

    // ...then a normal client ingests and reads back a schema.
    let body = "N 1 Person name=Ada\n";
    let raw = format!(
        "POST /v1/t/ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let reply = raw_roundtrip(addr, raw.as_bytes());
    assert_eq!(reply.status, 200, "{}", reply.body);
    let reply = raw_roundtrip(addr, b"GET /v1/t/schema HTTP/1.1\r\n\r\n");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("Person"), "{}", reply.body);
    server.shutdown();
}

#[test]
fn error_bodies_are_json_objects() {
    let server = start_server(ServeOptions::default());
    let addr = server.addr();
    for raw in [
        "GET /nope HTTP/1.1\r\n\r\n",
        "GET /v1/ghost/stats HTTP/1.1\r\n\r\n",
        "BROKEN\r\n\r\n",
    ] {
        let reply = raw_roundtrip(addr, raw.as_bytes());
        assert!(reply.status >= 400, "{raw:?}");
        assert!(
            reply.body.starts_with("{\"error\":\"") && reply.body.ends_with('}'),
            "{raw:?}: {}",
            reply.body
        );
        assert!(
            reply.body.contains("\"detail\":\""),
            "{raw:?}: {}",
            reply.body
        );
    }
    server.shutdown();
}
