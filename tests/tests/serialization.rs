//! Serialization integration: discovered schemas render to PG-Schema and
//! XSD with the expected structure.

use pg_hive_core::serialize::{pg_schema_loose, pg_schema_strict, to_xsd};
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_datasets::DatasetId;

fn ldbc_schema() -> pg_hive_core::SchemaGraph {
    let d = DatasetId::Ldbc.generate(0.05, 31);
    Discoverer::new(PipelineConfig::elsh_adaptive())
        .discover(&d.graph)
        .schema
}

#[test]
fn strict_declaration_covers_every_type() {
    let schema = ldbc_schema();
    let text = pg_schema_strict(&schema, "Ldbc");
    assert!(text.contains("CREATE GRAPH TYPE LdbcSchema STRICT {"));
    for t in &schema.node_types {
        for l in &t.labels {
            assert!(text.contains(l.as_str()), "missing label {l}");
        }
    }
    for t in &schema.edge_types {
        for l in &t.labels {
            assert!(text.contains(l.as_str()), "missing edge label {l}");
        }
    }
    // STRICT mode annotates datatypes and cardinalities.
    assert!(text.contains("STRING") || text.contains("INT"));
    assert!(text.contains("/* cardinality"));
}

#[test]
fn loose_declaration_has_no_type_annotations() {
    let schema = ldbc_schema();
    let text = pg_schema_loose(&schema, "Ldbc");
    assert!(text.contains("LOOSE"));
    assert!(!text.contains(" STRING"), "LOOSE must omit datatypes");
    assert!(!text.contains("OPTIONAL"));
}

#[test]
fn xsd_is_structurally_balanced() {
    let schema = ldbc_schema();
    let xml = to_xsd(&schema);
    assert_eq!(
        xml.matches("<xs:complexType").count(),
        xml.matches("</xs:complexType>").count()
    );
    assert_eq!(
        xml.matches("<xs:sequence>").count(),
        xml.matches("</xs:sequence>").count()
    );
    assert!(xml.ends_with("</xs:schema>\n"));
    // Every node type surfaces as a complexType.
    assert!(
        xml.matches("<xs:complexType").count() >= schema.node_types.len() + schema.edge_types.len()
    );
}

#[test]
fn mandatory_optional_split_is_reflected_in_min_occurs() {
    let schema = ldbc_schema();
    let xml = to_xsd(&schema);
    // LDBC Posts have optional content/imageFile, mandatory creationDate.
    assert!(xml.contains(r#"minOccurs="0""#));
    assert!(xml.contains(r#"minOccurs="1""#));
}

#[test]
fn serialization_is_deterministic() {
    let a = pg_schema_strict(&ldbc_schema(), "X");
    let b = pg_schema_strict(&ldbc_schema(), "X");
    assert_eq!(a, b);
}
