//! The §4.7 theoretical guarantees, checked against real pipeline output:
//! mandatory-constraint soundness, datatype compatibility, cardinality
//! upper bounds, and incremental monotonicity.

use pg_hive_core::merge::is_generalization_of;
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_datasets::{inject_noise, DatasetId, NoiseSpec};
use pg_hive_graph::{EdgeId, NodeId};
use std::collections::{HashMap, HashSet};

#[test]
fn mandatory_properties_are_present_in_every_instance() {
    let mut d = DatasetId::Pole.generate(0.05, 21);
    inject_noise(&mut d.graph, &NoiseSpec::grid(20, 100, 21));
    let r = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&d.graph);
    for t in &r.schema.node_types {
        for (key, spec) in &t.props {
            if !spec.is_mandatory(t.instance_count) {
                continue;
            }
            let sym = d.graph.keys().get(key).unwrap();
            for &m in &t.members {
                assert!(
                    d.graph.node(NodeId(m)).get(sym).is_some(),
                    "mandatory '{key}' missing on a member of {:?}",
                    t.labels
                );
            }
        }
    }
}

#[test]
fn inferred_datatypes_are_compatible_with_all_values() {
    // Full-scan inference: every observed value's kind must join into the
    // inferred kind without generalizing further.
    let d = DatasetId::Cord19.generate(0.05, 22);
    let r = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&d.graph);
    for t in &r.schema.node_types {
        for (key, spec) in &t.props {
            let Some(kind) = spec.kind else {
                panic!("datatype pass should fill every kind");
            };
            let sym = d.graph.keys().get(key).unwrap();
            for &m in &t.members {
                if let Some(v) = d.graph.node(NodeId(m)).get(sym) {
                    let vkind = pg_hive_core::postprocess::infer_value_kind(&v.lexical());
                    assert_eq!(
                        kind.join(vkind),
                        kind,
                        "value kind {vkind:?} incompatible with inferred {kind:?} for '{key}'"
                    );
                }
            }
        }
    }
}

#[test]
fn cardinalities_are_exact_over_members() {
    let d = DatasetId::Ldbc.generate(0.05, 23);
    let r = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&d.graph);
    for t in &r.schema.edge_types {
        let card = t.cardinality.expect("cardinality pass ran");
        // Recompute from scratch.
        let mut out: HashMap<u32, HashSet<u32>> = HashMap::new();
        let mut inc: HashMap<u32, HashSet<u32>> = HashMap::new();
        for &m in &t.members {
            let e = d.graph.edge(EdgeId(m));
            out.entry(e.src.0).or_default().insert(e.tgt.0);
            inc.entry(e.tgt.0).or_default().insert(e.src.0);
        }
        let max_out = out.values().map(HashSet::len).max().unwrap_or(0) as u64;
        let max_in = inc.values().map(HashSet::len).max().unwrap_or(0) as u64;
        assert_eq!(card.max_out, max_out, "{:?}", t.labels);
        assert_eq!(card.max_in, max_in, "{:?}", t.labels);
    }
}

#[test]
fn incremental_schemas_form_a_monotone_chain() {
    let d = DatasetId::Mb6.generate(0.05, 24);
    let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
    let batches = pg_hive_graph::split_batches(&d.graph, 6, 24);
    let mut prev: Option<pg_hive_core::SchemaGraph> = None;
    for upto in 1..=6 {
        let r = discoverer.discover_batches(&d.graph, &batches[..upto]);
        if let Some(p) = &prev {
            assert!(
                is_generalization_of(&r.schema, p),
                "S_{upto} must generalize S_{}",
                upto - 1
            );
        }
        prev = Some(r.schema);
    }
}

#[test]
fn incremental_final_instance_counts_match_static() {
    let d = DatasetId::Pole.generate(0.05, 25);
    let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
    let incr = discoverer.discover_incremental(&d.graph, 5);
    let stat = discoverer.discover(&d.graph);
    assert_eq!(incr.schema.node_instances(), stat.schema.node_instances());
    assert_eq!(incr.schema.edge_instances(), stat.schema.edge_instances());
    assert_eq!(incr.schema.node_instances() as usize, d.graph.node_count());
}

#[test]
fn incremental_discovers_same_labeled_type_inventory_as_static() {
    let d = DatasetId::Ldbc.generate(0.05, 26);
    let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
    let incr = discoverer.discover_incremental(&d.graph, 8);
    let stat = discoverer.discover(&d.graph);
    let mut a: Vec<_> = stat
        .schema
        .node_types
        .iter()
        .map(|t| t.labels.clone())
        .collect();
    let mut b: Vec<_> = incr
        .schema
        .node_types
        .iter()
        .map(|t| t.labels.clone())
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn abstract_types_only_arise_without_labels() {
    let d = DatasetId::Cord19.generate(0.05, 27);
    let r = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&d.graph);
    assert!(
        r.schema.node_types.iter().all(|t| !t.is_abstract()),
        "fully labeled input must not produce ABSTRACT types"
    );
}
