//! Proptests for snapshot persistence: a streaming discovery cut at a
//! random record boundary, checkpointed, reloaded, and resumed must
//! finalize to the **exact schema text** of the uninterrupted run — across
//! all three wire formats (pgt / CSV / JSONL) and 1–4 worker threads.
//!
//! This is the kill/restart guarantee `pg-hive watch --state-dir` and
//! `discover --save-state/--load-state` rest on: persistence must be
//! lossless for every piece of resumable context (the `SchemaState`
//! pools, the id → label-set registry that resolves post-cut edges
//! against pre-cut nodes, and the config guard), not just for the happy
//! path a hand-written example exercises.

use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::snapshot::{ResumeContext, SnapshotConfig};
use pg_hive_core::{Discoverer, PipelineConfig, SchemaState};
use pg_hive_graph::loader::save_text;
use pg_hive_graph::stream::csv::{save_edges_csv, save_nodes_csv, CsvSource};
use pg_hive_graph::stream::jsonl::{save_jsonl, JsonlSource};
use pg_hive_graph::stream::pgt::PgtSource;
use pg_hive_graph::{
    ChunkedTextReader, GraphBuilder, LabelSetRegistry, PropertyGraph, RawGraphSource, Value,
};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Random small graphs with escaper-hostile *values* (commas, quotes,
/// `%`, spaces) and a mix of labeled/unlabeled nodes, so the snapshot
/// codec and the registry both see awkward content. Keys stay wire-safe —
/// the pgt/CSV line formats do not escape keys (hostile keys and labels
/// are covered by the snapshot codec's unit tests, which do not go through
/// a wire format).
fn arb_graph() -> impl Strategy<Value = PropertyGraph> {
    let node = (
        0u8..4,
        any::<bool>(),
        proptest::collection::vec(any::<bool>(), 3),
    );
    (
        proptest::collection::vec(node, 1..25),
        proptest::collection::vec((0u8..25, 0u8..25, 0u8..3), 0..20),
    )
        .prop_map(|(nodes, edges)| {
            let mut b = GraphBuilder::new();
            let mut ids = Vec::new();
            for (ty, labeled, key_mask) in &nodes {
                let label = format!("T{ty}");
                let labels: Vec<&str> = if *labeled { vec![&label] } else { vec![] };
                let keys = ["alpha", "beta", "gamma"];
                let values = [
                    Value::Int(7),
                    Value::from("x, \"quoted\"=tricky %"),
                    Value::from("1999-12-19"),
                ];
                let props: Vec<(&str, Value)> = keys
                    .iter()
                    .zip(key_mask)
                    .enumerate()
                    .filter(|(_, (_, &m))| m)
                    .map(|(i, (k, _))| (*k, values[i].clone()))
                    .collect();
                ids.push(b.add_node(&labels, &props));
            }
            for (s, t, e) in &edges {
                let si = *s as usize % ids.len();
                let ti = *t as usize % ids.len();
                let label = format!("E{e}");
                b.add_edge(ids[si], ids[ti], &[&label], &[("w", Value::Int(*e as i64))]);
            }
            b.finish()
        })
}

#[derive(Clone, Copy, Debug)]
enum Fmt {
    Pgt,
    Csv,
    Jsonl,
}

/// One watch-style pass worth of input text: a single file for pgt/jsonl,
/// the (nodes, edges) pair for CSV.
#[derive(Clone)]
enum PassText {
    Single(String),
    Csv { nodes: String, edges: String },
}

impl PassText {
    fn into_source(self, fmt: Fmt) -> Box<dyn RawGraphSource> {
        match (fmt, self) {
            (Fmt::Pgt, PassText::Single(t)) => {
                Box::new(PgtSource::new(Cursor::new(t.into_bytes())))
            }
            (Fmt::Jsonl, PassText::Single(t)) => {
                Box::new(JsonlSource::new(Cursor::new(t.into_bytes())))
            }
            (Fmt::Csv, PassText::Csv { nodes, edges }) => Box::new(CsvSource::new(
                Cursor::new(nodes.into_bytes()),
                Some(Cursor::new(edges.into_bytes())),
            )),
            _ => unreachable!("format/text mismatch"),
        }
    }
}

/// Cut `text`'s lines at `fraction` (0..=100) of the way through,
/// mimicking how `pg-hive watch` consumes an appended file: pass 1 sees
/// the prefix, pass 2 the remainder.
fn cut_lines(text: &str, fraction: u8) -> (String, String) {
    let lines: Vec<&str> = text.lines().collect();
    let k = lines.len() * usize::from(fraction) / 100;
    let join = |ls: &[&str]| {
        let mut out = ls.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    };
    (join(&lines[..k]), join(&lines[k..]))
}

/// Cut a CSV file (header + data lines) the way the watcher does: the
/// header is retained and prepended to every later delta.
fn cut_csv(text: &str, fraction: u8) -> (String, String) {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    let data: Vec<&str> = lines.collect();
    let k = data.len() * usize::from(fraction) / 100;
    let mk = |ls: &[&str]| {
        let mut out = String::from(header);
        out.push('\n');
        for l in ls {
            out.push_str(l);
            out.push('\n');
        }
        out
    };
    (mk(&data[..k]), mk(&data[k..]))
}

/// Serialize `g` in `fmt` and split it into two watch-style passes at
/// `fraction`.
fn passes(g: &PropertyGraph, fmt: Fmt, fraction: u8) -> (PassText, PassText) {
    match fmt {
        Fmt::Pgt => {
            let (a, b) = cut_lines(&save_text(g), fraction);
            (PassText::Single(a), PassText::Single(b))
        }
        Fmt::Jsonl => {
            let (a, b) = cut_lines(&save_jsonl(g), fraction);
            (PassText::Single(a), PassText::Single(b))
        }
        Fmt::Csv => {
            let (na, nb) = cut_csv(&save_nodes_csv(g), fraction);
            let (ea, eb) = cut_csv(&save_edges_csv(g), fraction);
            (
                PassText::Csv {
                    nodes: na,
                    edges: ea,
                },
                PassText::Csv {
                    nodes: nb,
                    edges: eb,
                },
            )
        }
    }
}

/// Absorb one pass into the resident state, carrying the registry across
/// passes exactly like the watch loop does.
fn absorb_pass(
    d: &Discoverer,
    text: PassText,
    fmt: Fmt,
    chunk: usize,
    threads: usize,
    state: &mut SchemaState,
    registry: &mut LabelSetRegistry,
) {
    let mut reader =
        ChunkedTextReader::with_registry(text.into_source(fmt), chunk, std::mem::take(registry));
    d.absorb_stream(
        std::iter::from_fn(|| reader.next_chunk().expect("valid generated input")),
        state,
        threads,
    );
    *registry = reader.into_registry();
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_snapshot_path() -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pg-hive-snapshot-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Save-at-pass-1 → load → absorb the remainder finalizes to the exact
    /// schema text of the uninterrupted two-pass run, for every format and
    /// thread count.
    #[test]
    fn checkpointed_run_is_byte_identical_to_uninterrupted(
        g in arb_graph(),
        fraction in 0u8..=100,
        chunk in 1usize..8,
        threads in 1usize..=4,
    ) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let config = SnapshotConfig::new(d.config(), chunk);
        for fmt in [Fmt::Pgt, Fmt::Csv, Fmt::Jsonl] {
            let (part1, part2) = passes(&g, fmt, fraction);

            // Uninterrupted: both passes against one resident context.
            let uninterrupted = {
                let mut state = d.new_state();
                let mut registry = LabelSetRegistry::default();
                absorb_pass(&d, part1.clone(), fmt, chunk, threads, &mut state, &mut registry);
                absorb_pass(&d, part2.clone(), fmt, chunk, threads, &mut state, &mut registry);
                pg_schema_strict(&state.finalize(), "G")
            };

            // Kill/restart: checkpoint after pass 1, reload, resume.
            let resumed = {
                let mut state = d.new_state();
                let mut registry = LabelSetRegistry::default();
                absorb_pass(&d, part1.clone(), fmt, chunk, threads, &mut state, &mut registry);
                let path = temp_snapshot_path();
                ResumeContext { config: config.clone(), state, registry, watch: None, pending: Vec::new() }
                    .save(&path)
                    .expect("checkpoint saved");
                // Everything in-memory is gone now; reload from disk.
                let ctx = ResumeContext::load(&path).expect("checkpoint loads");
                prop_assert!(ctx.config.ensure_matches(&config).is_ok());
                // The snapshot file is a fixed point: re-serializing the
                // loaded context reproduces the exact bytes.
                prop_assert_eq!(
                    ctx.to_snapshot().to_text(),
                    std::fs::read_to_string(&path).expect("snapshot readable")
                );
                let mut state = ctx.state;
                let mut registry = ctx.registry;
                let mut reader = ChunkedTextReader::with_registry(
                    part2.clone().into_source(fmt),
                    chunk,
                    std::mem::take(&mut registry),
                );
                let result = d
                    .resume_stream(
                        &mut state,
                        std::iter::from_fn(|| reader.next_chunk().expect("valid input")),
                        threads,
                    )
                    .expect("theta matches");
                let _ = std::fs::remove_file(&path);
                pg_schema_strict(&result.schema, "G")
            };

            prop_assert_eq!(
                &resumed,
                &uninterrupted,
                "format {:?}, fraction {}, chunk {}, threads {}",
                fmt,
                fraction,
                chunk,
                threads
            );
        }
    }

    /// `SchemaState::save`/`load` alone (the minimal persistence surface)
    /// round-trips any reachable state to a byte-identical finalize.
    #[test]
    fn schema_state_save_load_is_lossless(g in arb_graph()) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let mut state = d.discover_chunk_state(&g);
        state.clear_members();
        let path = temp_snapshot_path();
        state.save(&path).expect("state saved");
        let back = SchemaState::load(&path).expect("state loads");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(
            pg_schema_strict(&back.finalize(), "G"),
            pg_schema_strict(&state.finalize(), "G")
        );
    }
}
