//! Proptests for the shard merge-tree: a mixed-format directory of inputs
//! (pgt / CSV / JSONL), randomly partitioned into 2–5 shards and folded
//! back along a **random merge tree**, must finalize to the exact schema
//! text of the unpartitioned serial run.
//!
//! This is the algebraic guarantee `discover --shards N` and
//! `pg-hive merge-state` rest on: snapshot-to-snapshot merge is
//! associative and commutative, so *any* partition of the input files and
//! *any* fold order — round-robin worker pools, hierarchical pairwise
//! folds, or offline `merge-state` over saved shards — produce one
//! byte-identical schema. A hand-picked fold order would only certify one
//! tree shape; the random tree certifies the algebra.

use pg_hive_core::snapshot::{ResumeContext, SnapshotConfig};
use pg_hive_core::{Discoverer, PipelineConfig, SchemaState};
use pg_hive_graph::loader::save_text;
use pg_hive_graph::stream::csv::{save_edges_csv, save_nodes_csv};
use pg_hive_graph::stream::jsonl::save_jsonl;
use pg_hive_graph::{GraphBuilder, MultiSource, PropertyGraph, Value};
use proptest::prelude::*;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Random small graphs: a mix of labeled/unlabeled nodes, edges that can
/// reference any node (so file cuts produce cross-file edges), and values
/// the wire formats must escape.
fn arb_graph() -> impl Strategy<Value = PropertyGraph> {
    let node = (
        0u8..4,
        any::<bool>(),
        proptest::collection::vec(any::<bool>(), 3),
    );
    (
        proptest::collection::vec(node, 1..20),
        proptest::collection::vec((0u8..25, 0u8..25, 0u8..3), 0..16),
    )
        .prop_map(|(nodes, edges)| {
            let mut b = GraphBuilder::new();
            let mut ids = Vec::new();
            for (ty, labeled, key_mask) in &nodes {
                let label = format!("T{ty}");
                let labels: Vec<&str> = if *labeled { vec![&label] } else { vec![] };
                let keys = ["alpha", "beta", "gamma"];
                let values = [
                    Value::Int(7),
                    Value::from("x, \"quoted\"=tricky %"),
                    Value::from("1999-12-19"),
                ];
                let props: Vec<(&str, Value)> = keys
                    .iter()
                    .zip(key_mask)
                    .enumerate()
                    .filter(|(_, (_, &m))| m)
                    .map(|(i, (k, _))| (*k, values[i].clone()))
                    .collect();
                ids.push(b.add_node(&labels, &props));
            }
            for (s, t, e) in &edges {
                let si = *s as usize % ids.len();
                let ti = *t as usize % ids.len();
                let label = format!("E{e}");
                b.add_edge(ids[si], ids[ti], &[&label], &[("w", Value::Int(*e as i64))]);
            }
            b.finish()
        })
}

/// Cut line-oriented text at `fraction` (0..=100) of its lines.
fn cut_lines(text: &str, fraction: u8) -> (String, String) {
    let lines: Vec<&str> = text.lines().collect();
    let k = lines.len() * usize::from(fraction) / 100;
    let join = |ls: &[&str]| {
        let mut out = ls.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    };
    (join(&lines[..k]), join(&lines[k..]))
}

/// Cut a CSV file (header + data lines), repeating the header on both
/// halves so each stays a parseable CSV input.
fn cut_csv(text: &str, fraction: u8) -> (String, String) {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    let data: Vec<&str> = lines.collect();
    let k = data.len() * usize::from(fraction) / 100;
    let mk = |ls: &[&str]| {
        let mut out = String::from(header);
        out.push('\n');
        for l in ls {
            out.push_str(l);
            out.push('\n');
        }
        out
    };
    (mk(&data[..k]), mk(&data[k..]))
}

/// One input unit of the generated directory tree: either a single file
/// (`.pgt` / `.jsonl`) or a CSV dataset directory.
enum Unit {
    File(&'static str, String),
    Csv(&'static str, String, String),
}

impl Unit {
    fn write_into(&self, dir: &Path) {
        match self {
            Unit::File(name, text) => std::fs::write(dir.join(name), text).unwrap(),
            Unit::Csv(name, nodes, edges) => {
                let sub = dir.join(name);
                std::fs::create_dir_all(&sub).unwrap();
                std::fs::write(sub.join("nodes.csv"), nodes).unwrap();
                std::fs::write(sub.join("edges.csv"), edges).unwrap();
            }
        }
    }
}

/// Serialize `g` once per wire format and split each serialization into
/// two units — six units total, every record covered by all three formats
/// (identical ids bind identical label sets, so registry collisions across
/// shards are value-equal and cannot break commutativity).
fn units(g: &PropertyGraph, cuts: (u8, u8, u8)) -> Vec<Unit> {
    let (pa, pb) = cut_lines(&save_text(g), cuts.0);
    let (ja, jb) = cut_lines(&save_jsonl(g), cuts.1);
    let (na, nb) = cut_csv(&save_nodes_csv(g), cuts.2);
    let (ea, eb) = cut_csv(&save_edges_csv(g), cuts.2);
    vec![
        Unit::File("a.pgt", pa),
        Unit::File("b.pgt", pb),
        Unit::File("c.jsonl", ja),
        Unit::File("d.jsonl", jb),
        Unit::Csv("e", na, ea),
        Unit::Csv("f", nb, eb),
    ]
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_case_dir(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pg-hive-shard-prop-{}-{}-{tag}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Discover one shard's directory into a mergeable [`ResumeContext`]:
/// within-shard pending edges are resolved by `discover_sharded` itself;
/// cross-shard ones come back in `pending` and ride along for the fold.
fn shard_context(d: &Discoverer, dir: &Path, chunk: usize, threads: usize) -> ResumeContext {
    let source = MultiSource::enumerate(dir).expect("shard dir enumerates");
    let r = d
        .discover_sharded(&source, 1, chunk, threads)
        .expect("valid generated input");
    ResumeContext {
        config: SnapshotConfig::new(d.config(), chunk),
        state: r.state,
        registry: r.registry,
        watch: None,
        pending: r.pending,
    }
}

/// Fold the shard contexts along a random binary tree driven by `picks`:
/// each step merges two randomly chosen survivors. Associativity +
/// commutativity say the tree shape cannot matter.
fn fold_random(mut ctxs: Vec<ResumeContext>, picks: &[u8]) -> ResumeContext {
    let mut i = 0;
    while ctxs.len() > 1 {
        let a = usize::from(picks[i % picks.len()]) % ctxs.len();
        let mut left = ctxs.swap_remove(a);
        let b = usize::from(picks[(i + 1) % picks.len()]) % ctxs.len();
        let right = ctxs.swap_remove(b);
        left.merge(right).expect("same config merges");
        ctxs.push(left);
        i += 2;
    }
    ctxs.pop().expect("at least one shard context")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random partition into 2–5 shards, random fold tree ⇒ the merged
    /// context finalizes byte-identically to the unpartitioned serial run
    /// over the same mixed-format directory.
    #[test]
    fn random_shard_partition_and_fold_tree_match_serial(
        g in arb_graph(),
        cuts in (0u8..=100, 0u8..=100, 0u8..=100),
        shard_count in 2usize..=5,
        assign in proptest::collection::vec(0u8..=255, 6),
        picks in proptest::collection::vec(0u8..=255, 8),
        chunk in 1usize..8,
        threads in 1usize..=2,
    ) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let all = units(&g, cuts);

        // Serial reference: every unit in one directory, one shard.
        let full = temp_case_dir("full");
        for u in &all {
            u.write_into(&full);
        }
        let serial = {
            let source = MultiSource::enumerate(&full).expect("dir enumerates");
            let r = d
                .discover_sharded(&source, 1, chunk, 1)
                .expect("valid generated input");
            pg_hive_core::serialize::pg_schema_strict(&r.state.finalize(), "G")
        };

        // Random partition: each unit lands in one of `shard_count` dirs.
        let shard_dirs: Vec<_> = (0..shard_count)
            .map(|s| temp_case_dir(&format!("s{s}")))
            .collect();
        for (u, pick) in all.iter().zip(&assign) {
            u.write_into(&shard_dirs[usize::from(*pick) % shard_count]);
        }
        let ctxs: Vec<ResumeContext> = shard_dirs
            .iter()
            .filter(|dir| {
                MultiSource::enumerate(dir).map(|s| !s.is_empty()).unwrap_or(false)
            })
            .map(|dir| shard_context(&d, dir, chunk, threads))
            .collect();
        prop_assert!(!ctxs.is_empty());

        // Random fold tree, then root resolution of cross-shard edges —
        // the exact post-merge step `merge-state` performs.
        let mut merged = fold_random(ctxs, &picks);
        let pending = std::mem::take(&mut merged.pending);
        let _ = d.resolve_pending(&mut merged.state, &merged.registry, pending);
        let folded = pg_hive_core::serialize::pg_schema_strict(&merged.state.finalize(), "G");

        let _ = std::fs::remove_dir_all(&full);
        for dir in &shard_dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
        prop_assert_eq!(
            &folded,
            &serial,
            "partition {:?} across {} shards, fold picks {:?}",
            assign,
            shard_count,
            picks
        );
    }

    /// Merging a state with a clone of itself is *structurally*
    /// idempotent: occurrence and instance counters double (merge adds
    /// them — that's what makes shard counts correct), but every type,
    /// key, datatype, and MANDATORY flag — i.e. the strict serialization
    /// — is unchanged. `s ⊕ s ≡ s` up to counts.
    #[test]
    fn self_merge_is_structurally_idempotent(
        g in arb_graph(),
        cuts in (0u8..=100, 0u8..=100, 0u8..=100),
        chunk in 1usize..8,
    ) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let dir = temp_case_dir("selfmerge");
        for u in units(&g, cuts) {
            u.write_into(&dir);
        }
        let ctx = shard_context(&d, &dir, chunk, 1);
        let _ = std::fs::remove_dir_all(&dir);

        let base = pg_hive_core::serialize::pg_schema_strict(&ctx.state.finalize(), "G");
        let mut doubled = ctx.state.clone();
        doubled.merge(ctx.state.clone());
        let after = pg_hive_core::serialize::pg_schema_strict(&doubled.finalize(), "G");
        prop_assert_eq!(&after, &base, "self-merge changed the schema structure");
    }

    /// Merging with a freshly constructed empty state (same θ) is a full
    /// identity in both directions: the finalized schema — counts,
    /// MANDATORY flags, everything — is exactly what the non-empty side
    /// finalizes to alone.
    #[test]
    fn merge_with_empty_state_is_identity(
        g in arb_graph(),
        cuts in (0u8..=100, 0u8..=100, 0u8..=100),
        chunk in 1usize..8,
    ) {
        let d = Discoverer::new(PipelineConfig::elsh_adaptive());
        let dir = temp_case_dir("emptymerge");
        for u in units(&g, cuts) {
            u.write_into(&dir);
        }
        let ctx = shard_context(&d, &dir, chunk, 1);
        let _ = std::fs::remove_dir_all(&dir);
        let theta = d.config().theta;

        // Debug rendering captures the full finalized schema including
        // instance and occurrence counts — stricter than the strict
        // serialization, which is exactly right for an identity law.
        let base = format!("{:?}", ctx.state.finalize());

        let mut left = ctx.state.clone();
        left.merge(SchemaState::new(theta));
        prop_assert_eq!(
            format!("{:?}", left.finalize()),
            base.clone(),
            "s ⊕ ∅ must equal s"
        );

        let mut right = SchemaState::new(theta);
        right.merge(ctx.state.clone());
        prop_assert_eq!(
            format!("{:?}", right.finalize()),
            base,
            "∅ ⊕ s must equal s"
        );
    }
}
