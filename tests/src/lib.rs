//! Integration test crate for the PG-HIVE workspace; see `tests/*.rs`.
