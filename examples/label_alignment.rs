//! Label-alignment scenario (the paper's future-work item (c)): two sources
//! describe the same domain with different label vocabularies
//! (`Person`/`Organization`/`City` vs `Individual`/`Company`/`Town`).
//! Plain discovery finds six node types; the alignment extension merges the
//! synonym pairs using a Word2Vec trained on the graph's own label
//! co-occurrences — no exact string matching involved.
//!
//! Run with: `cargo run --release --example label_alignment`

use pg_hive_core::align::{align_node_types, AlignmentConfig};
use pg_hive_core::preprocess::label_sentences;
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_datasets::integration::integration_scenario;
use pg_hive_embed::{Word2Vec, Word2VecConfig};
use pg_hive_eval::majority_f1;
use pg_hive_graph::GraphBatch;

fn main() {
    let dataset = integration_scenario(300, 99);
    println!(
        "Integrated graph from two sources: {} nodes, {} edges.\n",
        dataset.graph.node_count(),
        dataset.graph.edge_count()
    );

    let result = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&dataset.graph);
    let before = majority_f1(&result.node_assignment, &dataset.truth.node_types);
    println!(
        "Before alignment: {} node types (one per vocabulary label), node F1* vs \
         conceptual ground truth = {:.3}",
        result.schema.node_types.len(),
        before.macro_f1
    );

    // Train Word2Vec on the graph's own label co-occurrence sentences: both
    // vocabularies share WORKS_AT / LOCATED_IN contexts, so synonyms embed
    // close together.
    let all = GraphBatch {
        nodes: dataset.graph.nodes().map(|(id, _)| id).collect(),
        edges: dataset.graph.edges().map(|(id, _)| id).collect(),
    };
    let sentences = label_sentences(&dataset.graph, &all);
    // Window 1 keeps contexts to the *edge labels* only (source and target
    // labels never co-occur directly), so similarity is purely second-order
    // — exactly what separates synonyms from merely-connected types.
    let embedder = Word2Vec::train(
        &sentences,
        &Word2VecConfig {
            window: 1,
            epochs: 25,
            learning_rate: 0.08,
            ..Word2VecConfig::default()
        },
    );
    for (a, b) in [
        ("Person", "Individual"),
        ("Organization", "Company"),
        ("City", "Town"),
        ("Person", "Company"),
    ] {
        println!("  similarity({a}, {b}) = {:.3}", embedder.similarity(a, b));
    }

    let mut schema = result.schema.clone();
    let alignments = align_node_types(
        &mut schema,
        &embedder,
        &AlignmentConfig {
            cosine_threshold: 0.35,
            jaccard_threshold: 0.5,
        },
    );
    println!("\nAlignments performed:");
    for a in &alignments {
        let kept: Vec<&str> = a.kept.iter().map(String::as_str).collect();
        let merged: Vec<&str> = a.merged.iter().map(String::as_str).collect();
        println!(
            "  {{{}}} <- {{{}}}   (cosine {:.3}, property Jaccard {:.2})",
            kept.join(","),
            merged.join(","),
            a.cosine,
            a.jaccard
        );
    }

    // Score the aligned schema: rebuild assignments from the merged members.
    let mut aligned_assignment = vec![0u32; dataset.graph.node_count()];
    for (t, ty) in schema.node_types.iter().enumerate() {
        for &m in &ty.members {
            aligned_assignment[m as usize] = t as u32;
        }
    }
    let after = majority_f1(&aligned_assignment, &dataset.truth.node_types);
    println!(
        "\nAfter alignment: {} node types, node F1* = {:.3}",
        schema.node_types.len(),
        after.macro_f1
    );
}
