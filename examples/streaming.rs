//! Streaming ingestion end to end: export a graph as CSV, read it back in
//! small chunks with O(chunk) resident memory, and merge the per-chunk
//! schemas (§4.6 — "process large datasets on machines with limited
//! memory").
//!
//! Run with: `cargo run --example streaming`

use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_datasets::{export_graph, DatasetId, ExportFormat};
use pg_hive_graph::stream::csv::CsvSource;
use pg_hive_graph::ChunkedTextReader;

fn main() {
    // A small POLE-shaped graph (persons, objects, locations, events).
    let dataset = DatasetId::Pole.generate(0.05, 42);
    let graph = &dataset.graph;
    println!(
        "generated {} nodes / {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Export it as nodes.csv + edges.csv, the flat shape most systems dump.
    let dir =
        std::env::temp_dir().join(format!("pg-hive-streaming-example-{}", std::process::id()));
    let csv_dir = export_graph(graph, &dir, "pole", ExportFormat::Csv).expect("write CSV dataset");
    println!("exported to {}", csv_dir.display());

    // Stream it back in ~50-element chunks. Each chunk is an independent
    // PropertyGraph (own interners, own ids) that is dropped right after
    // the pipeline processes it; edges crossing a chunk boundary keep
    // their endpoint label sets through the reader's id -> labels registry.
    let source = CsvSource::open_dir(&csv_dir).expect("open CSV dataset");
    let mut reader = ChunkedTextReader::new(source, 50);
    let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
    let result = discoverer.discover_stream(std::iter::from_fn(|| {
        reader.next_chunk().expect("read chunk")
    }));

    println!(
        "streamed {} elements in {} chunks, peak resident {} elements",
        result.elements,
        result.chunk_times.len(),
        reader.max_resident_elements()
    );
    let w = reader.warnings();
    if !w.is_empty() {
        println!(
            "ingestion warnings: {} cross-chunk edges (stub endpoints), {} dangling",
            w.cross_chunk_edges, w.unresolved_edges
        );
    }
    println!("merged schema:");
    for t in &result.schema.node_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        println!(
            "  node {{{}}} x{} ({} props)",
            labels.join(","),
            t.instance_count,
            t.props.len()
        );
    }
    for t in &result.schema.edge_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        println!("  edge {{{}}} x{}", labels.join(","), t.instance_count);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
