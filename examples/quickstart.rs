//! Quickstart: discover the schema of the paper's Figure 1 example graph
//! and print it in both PG-Schema modes plus XSD.
//!
//! Run with: `cargo run --example quickstart`

use pg_hive_core::serialize::{pg_schema_loose, pg_schema_strict, to_xsd};
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_graph::loader::load_text;

const FIGURE_1: &str = "\
# The running example of the PG-HIVE paper (Figure 1).
N bob   Person name=Bob,gender=male,bday=1980-05-02
N alice -      name=Alice,gender=female,bday=1999-12-19
N john  Person name=John,gender=male,bday=2005-09-24
N post1 Post   imgFile=screenshot.png
N post2 Post   content=bazinga!
N org   Org    url=example.com,name=Example
N place Place  name=Greece
E alice john  KNOWS      -
E bob   john  KNOWS      since=2025-01-01
E alice post2 LIKES      -
E john  post1 LIKES      -
E bob   org   WORKS_AT   from=2000
E org   place LOCATED_IN -
E john  place LOCATED_IN from=2025
";

fn main() {
    let graph = load_text(FIGURE_1).expect("well-formed example");
    println!(
        "Loaded {} nodes / {} edges (note: 'alice' is unlabeled).\n",
        graph.node_count(),
        graph.edge_count()
    );

    let result = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&graph);

    println!(
        "Discovered {} node types and {} edge types:",
        result.schema.node_types.len(),
        result.schema.edge_types.len()
    );
    for t in &result.schema.node_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        println!(
            "  node type {{{}}} x{} instances, {} properties",
            labels.join(", "),
            t.instance_count,
            t.props.len()
        );
    }
    for t in &result.schema.edge_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        let card = t.cardinality.map(|c| c.class().notation()).unwrap_or("?");
        println!(
            "  edge type {{{}}} x{}, cardinality {}",
            labels.join(", "),
            t.instance_count,
            card
        );
    }

    println!("\n--- PG-Schema (LOOSE) ---");
    print!("{}", pg_schema_loose(&result.schema, "Fig1"));
    println!("--- PG-Schema (STRICT) ---");
    print!("{}", pg_schema_strict(&result.schema, "Fig1"));
    println!("--- XSD ---");
    print!("{}", to_xsd(&result.schema));
}
