//! Noisy multi-source integration scenario: an ICIJ-style heterogeneous
//! graph where 30% of properties are missing and only half the elements
//! carry labels — the regime where the paper's baselines stop working and
//! PG-HIVE's hybrid clustering still recovers the schema.
//!
//! Run with: `cargo run --release --example noisy_integration`

use pg_hive_baselines::Method;
use pg_hive_core::{ClusterMethod, Discoverer, PipelineConfig};
use pg_hive_datasets::{inject_noise, DatasetId, NoiseSpec};
use pg_hive_eval::majority_f1;

fn main() {
    let mut dataset = DatasetId::Icij.generate(0.15, 23);
    println!(
        "ICIJ-style offshore-leaks graph: {} nodes, {} edges.",
        dataset.graph.node_count(),
        dataset.graph.edge_count()
    );
    inject_noise(&mut dataset.graph, &NoiseSpec::grid(30, 50, 23));
    let unlabeled = dataset
        .graph
        .nodes()
        .filter(|(_, n)| n.labels.is_empty())
        .count();
    println!(
        "Degraded: 30% of properties removed, labels kept on half the \
         elements ({unlabeled} nodes now unlabeled).\n"
    );

    // The baselines refuse this input.
    for m in [Method::GmmSchema, Method::SchemI] {
        match m.run(&dataset.graph, 23) {
            None => println!(
                "{:<16} -> cannot run (requires fully labeled data)",
                m.name()
            ),
            Some(_) => println!("{:<16} -> unexpectedly ran!", m.name()),
        }
    }

    // Both PG-HIVE variants still work.
    for method in [ClusterMethod::Elsh, ClusterMethod::MinHash] {
        let cfg = PipelineConfig {
            method,
            seed: 23,
            ..PipelineConfig::elsh_adaptive()
        };
        let r = Discoverer::new(cfg).discover(&dataset.graph);
        let f1 = majority_f1(&r.node_cluster_assignment, &dataset.truth.node_types);
        let abstract_types = r
            .schema
            .node_types
            .iter()
            .filter(|t| t.is_abstract())
            .count();
        println!(
            "PG-HIVE-{:<8} -> node F1* {:.3} ({} node types, {} ABSTRACT)",
            if method == ClusterMethod::Elsh {
                "ELSH"
            } else {
                "MinHash"
            },
            f1.macro_f1,
            r.schema.node_types.len(),
            abstract_types
        );
    }

    println!(
        "\nUnlabeled clusters were matched to labeled types by property-set \
         Jaccard similarity (Algorithm 2); unmatched ones became ABSTRACT \
         types instead of being dropped."
    );
}
