//! Incremental streaming scenario (§4.6): a CORD19-style graph arrives in
//! ten batches; the schema is updated after each batch without
//! recomputation. Demonstrates the monotone schema chain S_1 ⊑ S_2 ⊑ … and
//! the flat per-batch cost of Fig. 7.
//!
//! Run with: `cargo run --release --example incremental_stream`

use pg_hive_core::merge::is_generalization_of;
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_datasets::DatasetId;
use pg_hive_graph::split_batches;

fn main() {
    let dataset = DatasetId::Cord19.generate(0.2, 11);
    let n_batches = 10;
    println!(
        "Streaming {} nodes / {} edges in {} batches...\n",
        dataset.graph.node_count(),
        dataset.graph.edge_count(),
        n_batches
    );

    let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
    let batches = split_batches(&dataset.graph, n_batches, 11);

    // Process prefixes of the stream to show the monotone chain: the schema
    // after batch i+1 must generalize the schema after batch i.
    let mut prev_schema = None;
    for upto in 1..=n_batches {
        let r = discoverer.discover_batches(&dataset.graph, &batches[..upto]);
        let batch_time = r.stats.batch_times.last().copied().unwrap_or_default();
        println!(
            "after batch {upto:>2}: {:>2} node types, {:>2} edge types  \
             (last batch processed in {:.3}s)",
            r.schema.node_types.len(),
            r.schema.edge_types.len(),
            batch_time.as_secs_f64()
        );
        if let Some(prev) = &prev_schema {
            assert!(
                is_generalization_of(&r.schema, prev),
                "monotonicity violated: S_{} does not generalize S_{}",
                upto,
                upto - 1
            );
        }
        prev_schema = Some(r.schema);
    }

    println!(
        "\nMonotonicity held at every step: each S_i+1 generalizes S_i \
         (no label, property, or endpoint was ever lost — Lemmas 1 & 2)."
    );

    // Compare against the static run.
    let static_run = discoverer.discover(&dataset.graph);
    let final_schema = prev_schema.unwrap();
    println!(
        "Static rediscovery finds {} node types; incremental found {}.",
        static_run.schema.node_types.len(),
        final_schema.node_types.len()
    );
}
