//! Social-network scenario: discover the schema of an LDBC-style graph
//! (the workload the paper's introduction motivates) and inspect the
//! constraints, data types, and cardinalities PG-HIVE infers beyond plain
//! type discovery.
//!
//! Run with: `cargo run --release --example social_network`

use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_datasets::DatasetId;
use pg_hive_eval::majority_f1;

fn main() {
    let dataset = DatasetId::Ldbc.generate(0.2, 7);
    println!(
        "LDBC-style social network: {} nodes, {} edges, {} ground-truth node types\n",
        dataset.graph.node_count(),
        dataset.graph.edge_count(),
        dataset.truth.node_type_names.len()
    );

    let result = Discoverer::new(PipelineConfig::elsh_adaptive()).discover(&dataset.graph);

    // How well did we do against the generator's ground truth?
    let node_f1 = majority_f1(&result.node_cluster_assignment, &dataset.truth.node_types);
    let edge_f1 = majority_f1(&result.edge_cluster_assignment, &dataset.truth.edge_types);
    println!(
        "F1* vs ground truth: nodes {:.3}, edges {:.3}\n",
        node_f1.macro_f1, edge_f1.macro_f1
    );

    println!("Inferred node types with constraints and data types:");
    for t in &result.schema.node_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        println!("  ({})", labels.join(" & "));
        for (key, spec) in &t.props {
            let req = if spec.is_mandatory(t.instance_count) {
                "MANDATORY"
            } else {
                "OPTIONAL "
            };
            let kind = spec.kind.map(|k| k.gql_name()).unwrap_or("?");
            println!("      {req} {key}: {kind}");
        }
    }

    println!("\nInferred edge types with endpoints and cardinalities:");
    for t in &result.schema.edge_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        let card = t.cardinality.map(|c| c.class().notation()).unwrap_or("?");
        for (src, tgt) in &t.endpoints {
            let s: Vec<&str> = src.iter().map(String::as_str).collect();
            let g: Vec<&str> = tgt.iter().map(String::as_str).collect();
            println!(
                "  (:{}) -[:{}]-> (:{})   {}",
                s.join("&"),
                labels.join("&"),
                g.join("&"),
                card
            );
        }
    }
}
