//! Vendored offline subset of the `rand 0.8` API.
//!
//! Provides exactly what this workspace calls: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods `gen`,
//! `gen_range`, and `gen_bool`, and `distributions::{Distribution, Uniform}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! portable, and statistically solid for the sampling this workspace does.
//! The byte stream differs from upstream `rand`'s `StdRng` (ChaCha12); all
//! in-tree determinism contracts are "same seed → same output with this
//! library", never "matches upstream rand".

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the subset of `rand::SeedableRng` used.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods (`rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: UniformSample,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait StandardSample {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random bits.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 random bits.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Types with uniform range sampling (`rng.gen_range(lo..hi)`).
pub trait UniformSample: Copy + PartialOrd {
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let span = if inclusive { span + 1 } else { span };
                assert!(span > 0, "cannot sample from empty range");
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, which is negligible for this workspace's use.
                let hi128 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(hi128 as $wide)) as $t
            }
        }
    )*};
}

uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::{RngCore, UniformSample};

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: UniformSample> Uniform<T> {
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl<T: UniformSample> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            T::sample_uniform(rng, self.lo, self.hi, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
