//! Vendored offline subset of the `criterion 0.5` API.
//!
//! Implements just enough for `[[bench]] harness = false` targets written
//! against criterion: groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and `Bencher::iter`. Timing is a simple
//! warmup + median-of-samples loop; results are printed one line per
//! benchmark (and per-element throughput when declared). No plots, no
//! statistical regression analysis.

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the measured closure; collects iteration timings.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` runs of `routine` (after one warmup run).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, b.median());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, b.median());
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, median: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{}: median {:?}{}", self.name, id.label, median, rate);
    }
}

/// Top-level bench driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Upstream defaults to 100 samples; 20 keeps full `cargo bench`
            // runs tractable while the median stays stable.
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string()).bench_function("", f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Upstream parses CLI args here; the subset ignores them (cargo bench
    /// passes `--bench`).
    pub fn configure_from_args(&mut self) -> &mut Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            criterion.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            g.bench_function("noop", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("in", 5), &5, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        // warmup + 3 samples
        assert_eq!(ran, 4);
    }
}
