//! Vendored serde facade: the `Serialize` / `Deserialize` names exist both
//! as marker traits and as (no-op) derive macros, mirroring how the real
//! crate exports them, so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compiles unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
