//! Vendored no-op `Serialize` / `Deserialize` derives.
//!
//! The workspace tags data structures with serde derives so that a real
//! serde can be dropped in when the environment has registry access, but
//! nothing currently serializes through serde — so the derives expand to
//! nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
