//! Vendored offline subset of the `proptest 1.x` API.
//!
//! Supports the strategy combinators this workspace's property tests use:
//! numeric range strategies, char-class string patterns (`"[a-z]{1,20}"`),
//! tuples, `prop_map`, `any::<bool>() / any::<i64>()`, and
//! `collection::{vec, btree_map, hash_set}` — driven by the [`proptest!`]
//! macro with `prop_assert!` / `prop_assert_eq!`.
//!
//! Deliberately omitted relative to upstream: shrinking (failures report the
//! generating seed and case index instead), `prop_filter`, recursive
//! strategies, and persistence files.

use std::collections::{BTreeMap, HashSet};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// FNV-1a — stable test-name → seed mapping for [`proptest!`].
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A failed `prop_assert!` inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Generation interface: every strategy can produce a value from a
/// [`TestRng`]. (Upstream separates `Strategy` from `ValueTree`; without
/// shrinking the two collapse.)
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `&'static str` char-class patterns: `"[a-zA-Z ]{1,20}"` (repetition
/// defaults to exactly 1). The only regex syntax supported is a single
/// bracketed class with ranges/literals, optionally followed by `{m,n}`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_pattern(self);
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported string strategy pattern {pattern:?}"));
    let close = rest
        .find(']')
        .unwrap_or_else(|| panic!("unterminated char class in {pattern:?}"));
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            assert!(a <= b, "descending char range in {pattern:?}");
            chars.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty char class in {pattern:?}");
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return (chars, 1, 1);
    }
    let inner = tail
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in {pattern:?}"));
    let (lo, hi) = match inner.split_once(',') {
        Some((l, h)) => (l.trim().parse().unwrap(), h.trim().parse().unwrap()),
        None => {
            let n = inner.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(lo <= hi, "descending repetition in {pattern:?}");
    (chars, lo, hi)
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub use arbitrary::any;

/// Collection strategies (`proptest::collection::*`).
pub mod collection {
    use super::*;

    /// Element-count specification: a fixed `usize` or a `usize` range.
    pub trait IntoSizeRange {
        /// Inclusive bounds `(lo, hi)`.
        fn size_bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    fn pick_len(rng: &mut TestRng, size: &impl IntoSizeRange) -> usize {
        let (lo, hi) = size.size_bounds();
        lo + rng.below(hi - lo + 1)
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = pick_len(rng, &self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    pub struct HashSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for HashSetStrategy<S, Z>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(rng, &self.size);
            let mut out = HashSet::new();
            // A finite element domain may not contain `target` distinct
            // values; cap the attempts like upstream does.
            for _ in 0..(target * 16 + 32) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn hash_set<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> HashSetStrategy<S, Z> {
        HashSetStrategy { element, size }
    }

    pub struct BTreeMapStrategy<K, V, Z> {
        key: K,
        value: V,
        size: Z,
    }

    impl<K: Strategy, V: Strategy, Z: IntoSizeRange> Strategy for BTreeMapStrategy<K, V, Z>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(rng, &self.size);
            let mut out = BTreeMap::new();
            for _ in 0..(target * 16 + 32) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    pub fn btree_map<K: Strategy, V: Strategy, Z: IntoSizeRange>(
        key: K,
        value: V,
        size: Z,
    ) -> BTreeMapStrategy<K, V, Z> {
        BTreeMapStrategy { key, value, size }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The test-defining macro. Each property becomes a `#[test]` that runs
/// `config.cases` deterministic cases seeded from the test's name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {seed:#x}): {}",
                        case + 1, config.cases, e.message
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn pattern_single_char() {
        let mut rng = TestRng::new(1);
        for _ in 0..50 {
            let s = "[A-E]".generate(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(('A'..='E').contains(&s.chars().next().unwrap()));
        }
    }

    #[test]
    fn pattern_with_repetition() {
        let mut rng = TestRng::new(2);
        for _ in 0..50 {
            let s = "[a-zA-Z ]{1,20}".generate(&mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
        }
    }

    #[test]
    fn ranges_and_collections() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = collection::vec(0u8..5, 1..40).generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            let m = collection::btree_map("[a-h]", 1u64..20, 0..6).generate(&mut rng);
            assert!(m.len() < 6);
            let s = collection::hash_set(0u64..40, 1..25).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 25);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_args(x in 0u32..10, pair in (0i64..5, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5, "got {}", pair.0);
            prop_assert_eq!(pair.0, pair.0);
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }
}
